//! Intra-job fan-out: a running [`Job`] may split into shard subtasks
//! that execute on the **same** worker pool, with submission-order
//! aggregation and per-shard panic isolation.
//!
//! The pool (PR 1) parallelizes *across* jobs; a single long replay
//! still pinned one worker. A [`Job::fan`] closure receives a
//! [`FanScope`] and may call [`FanScope::run_batch`] to push shard
//! subtasks onto the shared queue: idle workers pick them up, and the
//! fanning job itself help-drains the queue while it waits, so a fully
//! saturated pool degrades gracefully to inline execution instead of
//! deadlocking. Results come back **indexed by submission order**,
//! never by completion order — the same determinism discipline the
//! outer pool enforces (and the `shard-determinism` analyze rule pins).
//!
//! Deadlock freedom: a fanning job blocks on its results channel only
//! after observing the shared subtask queue empty; since the queue
//! never grows behind its back with its *own* tasks (it pushed them all
//! before waiting), its outstanding subtasks are necessarily in flight
//! on some thread, which will send. Nested fan-out (a subtask that
//! itself fans) runs inline — subtasks are leaves by construction.

use crate::job::{Job, JobFailure, JobOutcome, JobStats};
use std::collections::VecDeque;
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A type-erased shard subtask queued on the pool.
pub(crate) type SubTask<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Queue state shared by the workers and every fanning job. A single
/// mutex guards both the subtask queue and the outstanding-main-job
/// count so the exit condition ("no subtasks, and no main job that
/// could still fan") is checked atomically — no lost wakeups.
pub(crate) struct SubState<'env> {
    /// Queued shard subtasks, drained by workers and help-draining
    /// submitters alike.
    pub(crate) subs: VecDeque<SubTask<'env>>,
    /// Main jobs not yet completed; while nonzero, an idle worker must
    /// wait (a running main may still fan out subtasks) rather than exit.
    pub(crate) pending_main: usize,
}

/// The condvar-protected fan state one pool execution shares.
pub(crate) struct FanState<'env> {
    pub(crate) state: Mutex<SubState<'env>>,
    pub(crate) cv: Condvar,
}

impl<'env> FanState<'env> {
    pub(crate) fn new(pending_main: usize) -> Self {
        FanState {
            state: Mutex::new(SubState { subs: VecDeque::new(), pending_main }),
            cv: Condvar::new(),
        }
    }
}

/// The fan-out handle a [`Job::fan`] closure receives.
///
/// On a multi-worker pool the scope is backed by the shared subtask
/// queue; on a serial engine (or inside a subtask) it executes inline
/// on the calling thread — same results, same order, no threads.
pub struct FanScope<'scope, 'env> {
    pool: Option<&'scope FanState<'env>>,
}

impl std::fmt::Debug for FanScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanScope").field("pooled", &self.pool.is_some()).finish()
    }
}

impl<'scope, 'env> FanScope<'scope, 'env> {
    /// A scope that runs subtasks inline on the calling thread — the
    /// serial reference path the pooled path must match bit for bit.
    #[must_use]
    pub fn inline() -> Self {
        FanScope { pool: None }
    }

    /// A scope backed by the pool's shared subtask queue.
    pub(crate) fn pooled(state: &'scope FanState<'env>) -> Self {
        FanScope { pool: Some(state) }
    }

    /// True when subtasks may run on other workers (false on serial
    /// engines and inside nested fan-out, where they run inline).
    #[must_use]
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }

    /// Runs `jobs` as shard subtasks and returns their outcomes **in
    /// submission order**, each with the pool's usual panic isolation:
    /// a panicking shard becomes an `Err(`[`JobFailure`]`)` outcome
    /// while its siblings complete.
    ///
    /// Subtask closures must own their inputs (`Arc` clones, `Copy`
    /// configs), exactly like top-level jobs.
    pub fn run_batch<T: Send + 'env>(&self, jobs: Vec<Job<'env, T>>) -> Vec<JobOutcome<T>> {
        let submitted = Instant::now();
        match self.pool {
            None => jobs.into_iter().map(|j| j.run_leaf(submitted)).collect(),
            Some(fan) => run_pooled(fan, submitted, jobs),
        }
    }
}

/// Pushes `jobs` onto the shared subtask queue, help-drains the queue
/// while waiting, and returns the outcomes in submission order.
fn run_pooled<'env, T: Send + 'env>(
    fan: &FanState<'env>,
    submitted: Instant,
    jobs: Vec<Job<'env, T>>,
) -> Vec<JobOutcome<T>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome<T>)>();
    // Box the subtasks *before* taking the lock: the closures contain a
    // channel send, and building them under the guard would put that
    // send lexically inside the critical section.
    let mut tasks: Vec<SubTask<'env>> = Vec::with_capacity(n);
    for (index, job) in jobs.into_iter().enumerate() {
        let tx = tx.clone();
        tasks.push(Box::new(move || {
            let outcome = job.run_leaf(submitted);
            // sdbp-allow(result-discipline): the submitter only drops the receiver after every slot is filled or lost; a dead receiver needs no result
            let _ = tx.send((index, outcome));
        }));
    }
    drop(tx);
    {
        // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic outside a job is deliberate
        let mut st = fan.state.lock().expect("fan state poisoned");
        st.subs.extend(tasks.drain(..));
    }
    fan.cv.notify_all();

    let mut slots: Vec<Option<JobOutcome<T>>> = (0..n).map(|_| None).collect();
    let mut filled = 0usize;
    while filled < n {
        // Help-drain: run any queued subtask (ours or another fanning
        // job's) instead of blocking, so a saturated pool makes
        // progress on this very thread.
        let sub = {
            // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic outside a job is deliberate
            fan.state.lock().expect("fan state poisoned").subs.pop_front()
        };
        if let Some(sub) = sub {
            sub();
            while let Ok((index, outcome)) = rx.try_recv() {
                filled += fill(&mut slots, index, outcome);
            }
            continue;
        }
        // Queue empty: our remaining subtasks are in flight on other
        // threads; block until one reports.
        match rx.recv() {
            Ok((index, outcome)) => filled += fill(&mut slots, index, outcome),
            Err(_) => break, // every sender gone: all our subtasks ran
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.unwrap_or_else(|| lost_shard(index)))
        .collect()
}

/// Writes one tagged outcome into its submission-order slot, returning
/// how many new slots were filled (0 on an impossible duplicate).
fn fill<T>(slots: &mut [Option<JobOutcome<T>>], index: usize, outcome: JobOutcome<T>) -> usize {
    match slots.get_mut(index) {
        Some(slot @ None) => {
            *slot = Some(outcome);
            1
        }
        _ => 0,
    }
}

/// The outcome recorded for a shard whose result never arrived — a
/// failure entry, not a panic, so sibling shards still report.
fn lost_shard<T>(index: usize) -> JobOutcome<T> {
    let name = format!("shard#{index}");
    JobOutcome {
        result: Err(JobFailure {
            job: name.clone(),
            message: "fan subtask result lost".to_owned(),
        }),
        stats: JobStats {
            name,
            accesses: 0,
            source: None,
            queued_for: Duration::ZERO,
            ran_for: Duration::ZERO,
        },
    }
}
