//! Exports the engine's accumulated telemetry as a machine-readable JSON
//! report (`target/engine-report.json` by convention) — the seed of the
//! repo's `BENCH_*.json` performance trajectory.

use crate::json::JsonWriter;
use crate::telemetry::EngineTelemetry;
use std::io;
use std::path::Path;

/// Default report location, relative to the workspace root.
pub const DEFAULT_REPORT_PATH: &str = "target/engine-report.json";

/// Environment variable overriding [`DEFAULT_REPORT_PATH`]. Concurrent
/// consumers — a serve daemon and a CI sweep, or two CI jobs sharing a
/// workspace — point this at distinct files so reports never clobber
/// each other.
pub const REPORT_PATH_ENV: &str = "SDBP_ENGINE_REPORT";

/// The report path a run should write to: `$SDBP_ENGINE_REPORT` when
/// set, else [`DEFAULT_REPORT_PATH`].
#[must_use]
pub fn default_report_path() -> std::path::PathBuf {
    std::env::var_os(REPORT_PATH_ENV)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from(DEFAULT_REPORT_PATH))
}

/// Renders `telemetry` (for an engine with `workers` threads) as a JSON
/// document.
#[must_use]
pub fn render_json(workers: usize, telemetry: &EngineTelemetry) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("sdbp-engine-report/v1");
    w.key("workers").uint(workers as u64);
    w.key("serial").boolean(workers <= 1);
    w.key("jobs").uint(telemetry.jobs() as u64);
    w.key("jobs_failed").uint(telemetry.failed() as u64);
    w.key("elapsed_seconds").float(telemetry.elapsed().as_secs_f64());
    w.key("busy_seconds").float(telemetry.busy().as_secs_f64());
    w.key("speedup").float(telemetry.speedup());
    w.key("accesses").uint(telemetry.accesses());
    let elapsed = telemetry.elapsed().as_secs_f64();
    w.key("accesses_per_second")
        .float(if elapsed > 0.0 { telemetry.accesses() as f64 / elapsed } else { 0.0 });
    w.key("batches").begin_array();
    for b in &telemetry.batches {
        w.begin_object();
        w.key("label").string(&b.label);
        w.key("workers").uint(b.workers as u64);
        w.key("jobs").uint(b.jobs as u64);
        w.key("failed").uint(b.failed as u64);
        w.key("elapsed_seconds").float(b.elapsed.as_secs_f64());
        w.key("busy_seconds").float(b.busy.as_secs_f64());
        w.key("speedup").float(b.speedup());
        w.key("accesses").uint(b.accesses);
        w.key("accesses_per_second").float(b.throughput());
        w.key("mean_queue_wait_seconds").float(b.mean_queue_wait().as_secs_f64());
        w.key("per_job").begin_array();
        for j in &b.per_job {
            w.begin_object();
            w.key("name").string(&j.name);
            if let Some(source) = &j.source {
                w.key("source").string(source);
            }
            w.key("seconds").float(j.ran_for.as_secs_f64());
            w.key("queue_wait_seconds").float(j.queued_for.as_secs_f64());
            w.key("accesses").uint(j.accesses);
            w.key("accesses_per_second").float(j.throughput());
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Writes the report to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &Path, workers: usize, telemetry: &EngineTelemetry) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render_json(workers, telemetry))
}

#[cfg(test)]
mod path_tests {
    use super::*;

    #[test]
    fn report_path_honours_the_environment_override() {
        // Serialized within this one test so no other test observes the
        // temporary environment mutation.
        assert_eq!(default_report_path(), Path::new(DEFAULT_REPORT_PATH));
        std::env::set_var(REPORT_PATH_ENV, "target/other-report.json");
        assert_eq!(default_report_path(), Path::new("target/other-report.json"));
        std::env::remove_var(REPORT_PATH_ENV);
        assert_eq!(default_report_path(), Path::new(DEFAULT_REPORT_PATH));
    }
}
