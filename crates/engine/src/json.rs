//! A minimal hand-rolled JSON emitter (the sandbox has no serde), just
//! enough for the engine's flat report shape: objects, arrays, strings,
//! numbers, booleans.

use std::fmt::Write as _;

/// Builds a JSON document as a string, tracking comma placement.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the current container already holds a value (per nesting
    /// level), so the writer knows when to emit a comma.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Starts an empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object as the next value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens an array as the next value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push(']');
        self
    }

    /// Emits an object key; the next call supplies its value.
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.pre_value();
        self.string_raw(key);
        self.out.push(':');
        // The key's value must not get a comma before it.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emits a string value.
    pub fn string(&mut self, value: &str) -> &mut Self {
        self.pre_value();
        self.string_raw(value);
        self
    }

    /// Emits an unsigned integer value.
    pub fn uint(&mut self, value: u64) -> &mut Self {
        self.pre_value();
        // sdbp-allow(result-discipline): fmt::Write into a String is infallible
        let _ = write!(self.out, "{value}");
        self
    }

    /// Emits a float value (JSON has no NaN/Inf; those become 0).
    pub fn float(&mut self, value: f64) -> &mut Self {
        self.pre_value();
        if value.is_finite() {
            // sdbp-allow(result-discipline): fmt::Write into a String is infallible
            let _ = write!(self.out, "{value:.6}");
        } else {
            self.out.push('0');
        }
        self
    }

    /// Emits a boolean value.
    pub fn boolean(&mut self, value: bool) -> &mut Self {
        self.pre_value();
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    fn string_raw(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    // sdbp-allow(result-discipline): fmt::Write into a String is infallible
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Finishes the document.
    #[must_use]
    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unclosed JSON container");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("run \"x\"\n");
        w.key("jobs").uint(3);
        w.key("ok").boolean(true);
        w.key("items").begin_array();
        w.begin_object().key("i").uint(0).end_object();
        w.begin_object().key("i").uint(1).end_object();
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\"name\":\"run \\\"x\\\"\\n\",\"jobs\":3,\"ok\":true,\
             \"items\":[{\"i\":0},{\"i\":1}]}"
        );
    }

    #[test]
    fn floats_are_finite() {
        let mut w = JsonWriter::new();
        w.begin_array().float(1.5).float(f64::NAN).end_array();
        assert_eq!(w.finish(), "[1.500000,0]");
    }
}
