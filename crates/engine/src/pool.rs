//! The worker pool: a chunk-free, self-balancing scheduler over
//! `std::thread::scope` and an `mpsc` results channel.
//!
//! Workers pull `(submission index, job)` pairs off a shared queue, so a
//! long job never blocks the others (work stealing degenerates to a
//! single shared deque, which is ideal for coarse simulation jobs: each
//! job runs for milliseconds to seconds, so queue contention is noise).
//! Results flow back tagged with their submission index and are written
//! into a slot table — **aggregation order is submission order**, no
//! matter which worker finishes first, which is what makes parallel runs
//! byte-identical to serial ones.
//!
//! Since the fan-out refactor the pool also services **shard subtasks**
//! ([`crate::fan`]): a running job may split into shards that land on
//! the shared [`FanState`] queue, and workers prefer subtasks over main
//! jobs — a fanned replay must never starve behind queued main jobs, or
//! the job waiting on its shards could wait forever. An idle worker
//! exits only when no subtask is queued *and* no main job is still
//! running (a running main may yet fan); until then it parks on the
//! fan condvar.

use crate::fan::{FanScope, FanState};
use crate::job::{Job, JobOutcome};
use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Runs `jobs` on `workers` threads (1 = inline serial execution) and
/// returns their outcomes in submission order.
pub(crate) fn execute<'env, T: Send>(
    workers: usize,
    jobs: Vec<Job<'env, T>>,
) -> Vec<JobOutcome<T>> {
    let submitted = Instant::now();
    let n = jobs.len();
    if workers <= 1 {
        // Serial reference path: same code path the deterministic-
        // aggregation tests compare against, no threads involved. Fan
        // jobs get an inline scope, so their shards run sequentially.
        return jobs.into_iter().map(|j| j.run_leaf(submitted)).collect();
    }

    let fan: FanState<'env> = FanState::new(n);
    let queue: Mutex<VecDeque<(usize, Job<'env, T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let mut slots: Vec<Option<JobOutcome<T>>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome<T>)>();

    // All `workers` threads spawn even when `n` is smaller: the extras
    // idle on the fan condvar and pick up shard subtasks, which is
    // exactly what lets a single fanning job use the whole pool.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let fan = &fan;
            scope.spawn(move || {
                loop {
                    // Shard subtasks first (see module docs).
                    let sub = {
                        // The lock only wraps `pop_front`, so poisoning means
                        // another worker panicked outside a job — already fatal.
                        // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic is deliberate
                        fan.state.lock().expect("fan state poisoned").subs.pop_front()
                    };
                    if let Some(sub) = sub {
                        sub();
                        continue;
                    }
                    // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic is deliberate
                    let next = queue.lock().expect("job queue poisoned").pop_front();
                    if let Some((index, job)) = next {
                        // Job panics are caught inside `run`; a send failure
                        // means the receiver is gone, which cannot happen
                        // while this scope is alive.
                        let outcome = job.run(submitted, &FanScope::pooled(fan));
                        let sent = tx.send((index, outcome));
                        {
                            // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic is deliberate
                            let mut st = fan.state.lock().expect("fan state poisoned");
                            st.pending_main -= 1;
                        }
                        // Wake idle workers: either there is follow-on work,
                        // or pending_main hit zero and they should exit.
                        fan.cv.notify_all();
                        if sent.is_err() {
                            break;
                        }
                        continue;
                    }
                    // Nothing runnable. Exit only when no main job can
                    // still fan out more subtasks; otherwise park.
                    // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic is deliberate
                    let st = fan.state.lock().expect("fan state poisoned");
                    if st.subs.is_empty() {
                        if st.pending_main == 0 {
                            break;
                        }
                        // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic is deliberate
                        drop(fan.cv.wait(st).expect("fan state poisoned"));
                    }
                }
            });
        }
        drop(tx);
        for (index, outcome) in rx {
            // Indices come from `enumerate` over the `n` submitted jobs
            // and `slots` has length `n`; a miss here would surface as a
            // lost result in the collect below.
            if let Some(slot) = slots.get_mut(index) {
                debug_assert!(slot.is_none(), "job {index} completed twice");
                *slot = Some(outcome);
            }
        }
    });

    slots
        .into_iter()
        // Every queued job sends exactly one tagged result before the
        // scope joins, so each slot is filled.
        // sdbp-allow(no-panic-paths): a lost result is an engine bug, not a recoverable state
        .map(|s| s.expect("worker pool lost a job result"))
        .collect()
}
