//! The worker pool: a chunk-free, self-balancing scheduler over
//! `std::thread::scope` and an `mpsc` results channel.
//!
//! Workers pull `(submission index, job)` pairs off a shared queue, so a
//! long job never blocks the others (work stealing degenerates to a
//! single shared deque, which is ideal for coarse simulation jobs: each
//! job runs for milliseconds to seconds, so queue contention is noise).
//! Results flow back tagged with their submission index and are written
//! into a slot table — **aggregation order is submission order**, no
//! matter which worker finishes first, which is what makes parallel runs
//! byte-identical to serial ones.

use crate::job::{Job, JobOutcome};
use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};
use std::time::Instant;

/// Runs `jobs` on `workers` threads (1 = inline serial execution) and
/// returns their outcomes in submission order.
pub(crate) fn execute<T: Send>(workers: usize, jobs: Vec<Job<'_, T>>) -> Vec<JobOutcome<T>> {
    let submitted = Instant::now();
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        // Serial reference path: same code path the deterministic-
        // aggregation tests compare against, no threads involved.
        return jobs.into_iter().map(|j| j.run(submitted)).collect();
    }

    let queue: Mutex<VecDeque<(usize, Job<'_, T>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let mut slots: Vec<Option<JobOutcome<T>>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, JobOutcome<T>)>();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || {
                loop {
                    // The lock only wraps `pop_front`, so poisoning means
                    // another worker panicked outside a job — already fatal.
                    // sdbp-allow(no-panic-paths): propagating mutex poisoning after a worker panic is deliberate
                    let next = queue.lock().expect("job queue poisoned").pop_front();
                    let Some((index, job)) = next else { break };
                    // Job panics are caught inside `run`; a send failure
                    // means the receiver is gone, which cannot happen
                    // while this scope is alive.
                    let outcome = job.run(submitted);
                    if tx.send((index, outcome)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (index, outcome) in rx {
            // Indices come from `enumerate` over the `n` submitted jobs
            // and `slots` has length `n`; a miss here would surface as a
            // lost result in the collect below.
            if let Some(slot) = slots.get_mut(index) {
                debug_assert!(slot.is_none(), "job {index} completed twice");
                *slot = Some(outcome);
            }
        }
    });

    slots
        .into_iter()
        // Every queued job sends exactly one tagged result before the
        // scope joins, so each slot is filled.
        // sdbp-allow(no-panic-paths): a lost result is an engine bug, not a recoverable state
        .map(|s| s.expect("worker pool lost a job result"))
        .collect()
}
