//! `sdbp-engine` — the parallel experiment execution engine.
//!
//! The paper's evaluation methodology — sweeping many independent
//! `(workload, cache config, policy)` simulations — is embarrassingly
//! parallel. This crate turns that observation into infrastructure: a
//! [`Job`] wraps one simulation as an owned closure, an [`Engine`] runs a
//! batch of jobs over a `std`-only worker pool, and the results come back
//! **in submission order, regardless of completion order**, so a parallel
//! run's aggregated output is byte-identical to the serial reference run.
//!
//! Three properties the harness relies on:
//!
//! * **Deterministic aggregation** — `run_batch` returns `Vec` slots
//!   indexed by submission order; thread scheduling can never reorder
//!   result tables.
//! * **Panic isolation** — a panicking simulation is reported as a failed
//!   job ([`JobFailure`]) while its siblings complete; one poisoned
//!   configuration does not sink a whole sweep.
//! * **Built-in telemetry** — per-job wall clock, queue wait and
//!   accesses/second, per-batch realized speedup, and engine-wide
//!   counters, exportable as hand-rolled JSON
//!   ([`report::write_json`], by convention `target/engine-report.json`).
//!
//! # Example
//!
//! ```
//! use sdbp_engine::{Engine, Job};
//! let engine = Engine::with_workers(4);
//! let batch = engine.run_batch(
//!     "squares",
//!     (0u64..8).map(|i| Job::new(format!("sq{i}"), move || i * i)).collect(),
//! );
//! let squares: Vec<u64> = batch.expect_all();
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fan;
pub mod job;
pub mod json;
mod pool;
pub mod report;
pub mod telemetry;

pub use fan::FanScope;
pub use job::{Job, JobFailure, JobStats};
pub use telemetry::{BatchStats, EngineTelemetry};

use std::sync::Mutex;
use std::time::Instant;

/// How many workers an [`Engine`] should use.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Parallelism {
    /// One job at a time on the calling thread (the reference path).
    Serial,
    /// Exactly this many worker threads.
    Workers(usize),
    /// One worker per available hardware thread.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count.
    #[must_use]
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Workers(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(usize::from).unwrap_or(1)
            }
        }
    }
}

/// The execution engine: a worker count plus accumulated telemetry.
///
/// Engines are cheap; the harness keeps one per invocation so every
/// experiment's batches land in a single report.
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    telemetry: Mutex<EngineTelemetry>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(Parallelism::Auto)
    }
}

impl Engine {
    /// Creates an engine with the given parallelism.
    #[must_use]
    pub fn new(parallelism: Parallelism) -> Self {
        Engine { workers: parallelism.workers(), telemetry: Mutex::new(EngineTelemetry::default()) }
    }

    /// A single-threaded engine (the serial reference path).
    #[must_use]
    pub fn serial() -> Self {
        Engine::new(Parallelism::Serial)
    }

    /// An engine with exactly `n` workers.
    #[must_use]
    pub fn with_workers(n: usize) -> Self {
        Engine::new(Parallelism::Workers(n))
    }

    /// The concrete worker count this engine schedules onto.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// True when the engine runs jobs inline on the calling thread.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Runs `jobs` and returns their results in submission order.
    ///
    /// Panicking jobs become `Err(JobFailure)` entries; all other jobs
    /// still run. Batch timing is recorded in the engine's telemetry
    /// under `label`.
    pub fn run_batch<T: Send>(&self, label: &str, jobs: Vec<Job<'_, T>>) -> Batch<T> {
        let started = Instant::now();
        let outcomes = pool::execute(self.workers, jobs);
        let elapsed = started.elapsed();

        let mut results = Vec::with_capacity(outcomes.len());
        let mut per_job = Vec::with_capacity(outcomes.len());
        let mut failed = 0usize;
        for outcome in outcomes {
            if outcome.result.is_err() {
                failed += 1;
            }
            per_job.push(outcome.stats);
            results.push(outcome.result);
        }
        let stats = BatchStats {
            label: label.to_owned(),
            workers: self.workers,
            jobs: results.len(),
            failed,
            elapsed,
            busy: per_job.iter().map(|j| j.ran_for).sum(),
            accesses: per_job.iter().map(|j| j.accesses).sum(),
            per_job,
        };
        // sdbp-allow(no-panic-paths): telemetry mutex poisons only if a prior batch panicked mid-push
        self.telemetry.lock().expect("telemetry poisoned").batches.push(stats.clone());
        Batch { results, stats }
    }

    /// Runs a single job with the same panic isolation and telemetry as
    /// a batch (a one-job batch executes inline on the calling thread).
    ///
    /// This is the entry point for callers that multiplex independent
    /// jobs themselves — e.g. a server executing one queued request per
    /// executor thread — but still want every run timed, counted, and
    /// panic-contained in the engine report.
    ///
    /// # Errors
    ///
    /// Returns the [`JobFailure`] if the job panicked.
    pub fn run_one<T: Send>(&self, label: &str, job: Job<'_, T>) -> Result<T, JobFailure> {
        let mut batch = self.run_batch(label, vec![job]);
        match batch.results.pop() {
            Some(result) => result,
            None => Err(JobFailure {
                job: label.to_owned(),
                message: "engine returned no result for a one-job batch".to_owned(),
            }),
        }
    }

    /// Convenience wrapper: runs plain closures (no names, no access
    /// counts) and unwraps the results, panicking if any job panicked.
    pub fn run_all<T: Send>(
        &self,
        label: &str,
        work: Vec<Box<dyn FnOnce() -> T + Send + '_>>,
    ) -> Vec<T> {
        let jobs = work
            .into_iter()
            .enumerate()
            .map(|(i, w)| Job::new(format!("{label}#{i}"), w))
            .collect();
        self.run_batch(label, jobs).expect_all()
    }

    /// Snapshot of everything this engine has run.
    #[must_use]
    pub fn telemetry(&self) -> EngineTelemetry {
        // sdbp-allow(no-panic-paths): telemetry mutex poisons only if a prior batch panicked mid-push
        self.telemetry.lock().expect("telemetry poisoned").clone()
    }

    /// Writes the accumulated telemetry as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_report(&self, path: &std::path::Path) -> std::io::Result<()> {
        report::write_json(path, self.workers, &self.telemetry())
    }
}

#[cfg(test)]
mod run_one_tests {
    use super::*;

    #[test]
    fn run_one_returns_the_value_and_records_telemetry() {
        let engine = Engine::serial();
        let v = engine.run_one("one", Job::new("answer", || 42u64).accesses(7));
        assert_eq!(v, Ok(42));
        let t = engine.telemetry();
        assert_eq!(t.jobs(), 1);
        assert_eq!(t.accesses(), 7);
        assert_eq!(t.batches.len(), 1);
        assert_eq!(t.batches[0].label, "one");
    }

    #[test]
    fn run_one_isolates_a_panicking_job() {
        let engine = Engine::serial();
        let r: Result<(), JobFailure> =
            engine.run_one("boom", Job::new("boom", || panic!("sank")));
        let failure = r.expect_err("panic must surface as a JobFailure");
        assert_eq!(failure.job, "boom");
        assert!(failure.message.contains("sank"));
        // The engine stays usable after an isolated panic.
        assert_eq!(engine.run_one("after", Job::new("after", || 1u8)), Ok(1));
        assert_eq!(engine.telemetry().failed(), 1);
    }
}

/// Results of one batch, in submission order, plus its timing.
#[derive(Debug)]
pub struct Batch<T> {
    /// Per-job results (submission order); panicked jobs are `Err`.
    pub results: Vec<Result<T, JobFailure>>,
    /// Batch timing summary (also retained in the engine telemetry).
    pub stats: BatchStats,
}

impl<T> Batch<T> {
    /// Unwraps every result, panicking with the first failure.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked.
    #[must_use]
    pub fn expect_all(self) -> Vec<T> {
        self.results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                // sdbp-allow(no-panic-paths): documented panicking accessor; fallible callers use successes()
                Err(e) => panic!("{e}"),
            })
            .collect()
    }

    /// The successful results, dropping failed jobs (submission order
    /// preserved among survivors).
    #[must_use]
    pub fn successes(self) -> Vec<T> {
        self.results.into_iter().filter_map(Result::ok).collect()
    }
}
