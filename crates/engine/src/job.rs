//! The unit of work the engine schedules: one named, self-contained
//! simulation closure plus everything the telemetry layer wants to know
//! about how it ran.

use crate::fan::FanScope;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// The job's closure: either a plain leaf, or a fanning closure that
/// receives a [`FanScope`] and may split into shard subtasks on the
/// same pool.
enum Work<'env, T> {
    Plain(Box<dyn FnOnce() -> T + Send + 'env>),
    Fan(Box<dyn FnOnce(&FanScope<'_, 'env>) -> T + Send + 'env>),
}

/// One schedulable simulation: a name for telemetry, an access count for
/// throughput accounting, and the work itself.
///
/// The closure owns its inputs (cheap `Arc` clones of recorded workloads,
/// `Copy` configs) and returns an owned result, so a job can run on any
/// worker thread without sharing mutable state with its siblings.
pub struct Job<'env, T> {
    /// Telemetry label, e.g. `"456.hmmer/Sampler"`.
    pub name: String,
    /// Number of simulated LLC accesses (or another work unit) the job
    /// processes; feeds the accesses/second throughput counters. Zero is
    /// fine for jobs where no such count applies.
    pub accesses: u64,
    /// Where the job's input comes from (e.g. `"synthetic"` or
    /// `"file:traces/hmmer.sdbt"`), surfaced in telemetry so a report
    /// records whether a run was generated or replayed from an archive.
    pub source: Option<String>,
    work: Work<'env, T>,
}

impl<T> std::fmt::Debug for Job<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("accesses", &self.accesses)
            .finish_non_exhaustive()
    }
}

impl<'env, T> Job<'env, T> {
    /// Wraps `work` as a job named `name`.
    pub fn new(name: impl Into<String>, work: impl FnOnce() -> T + Send + 'env) -> Self {
        Job { name: name.into(), accesses: 0, source: None, work: Work::Plain(Box::new(work)) }
    }

    /// Wraps `work` as a **fanning** job: the closure receives a
    /// [`FanScope`] and may split into shard subtasks that run on the
    /// same pool ([`FanScope::run_batch`]), with submission-order
    /// aggregation and per-shard panic isolation. On a serial engine
    /// the scope executes shards inline, bit-identically.
    pub fn fan(
        name: impl Into<String>,
        work: impl FnOnce(&FanScope<'_, 'env>) -> T + Send + 'env,
    ) -> Self {
        Job { name: name.into(), accesses: 0, source: None, work: Work::Fan(Box::new(work)) }
    }

    /// Sets the access count used for throughput telemetry.
    #[must_use]
    pub fn accesses(mut self, accesses: u64) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sets the input-source label surfaced in telemetry.
    #[must_use]
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Runs the job with panic isolation, timing it relative to
    /// `submitted` (the batch submission instant, for queue-wait time).
    /// Fanning jobs receive `scope`; plain jobs ignore it.
    pub(crate) fn run(self, submitted: Instant, scope: &FanScope<'_, 'env>) -> JobOutcome<T> {
        let started = Instant::now();
        let queued_for = started.duration_since(submitted);
        let name = self.name;
        let work = self.work;
        // `&*payload`, not `&payload`: a `&Box<dyn Any>` would unsize to a
        // `&dyn Any` whose concrete type is the Box, defeating the downcast.
        let result = match work {
            Work::Plain(w) => catch_unwind(AssertUnwindSafe(w)),
            Work::Fan(w) => catch_unwind(AssertUnwindSafe(move || w(scope))),
        }
        .map_err(|payload| JobFailure {
            job: name.clone(),
            message: panic_message(&*payload),
        });
        JobOutcome {
            result,
            stats: JobStats {
                name,
                accesses: self.accesses,
                source: self.source,
                queued_for,
                ran_for: started.elapsed(),
            },
        }
    }

    /// Runs the job as a leaf: a fanning closure gets an inline scope,
    /// so its shards execute sequentially on this thread. This is the
    /// serial path and the execution mode of subtasks themselves
    /// (nested fan-out never re-enters the pool).
    pub(crate) fn run_leaf(self, submitted: Instant) -> JobOutcome<T> {
        self.run(submitted, &FanScope::inline())
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A job that panicked: the batch keeps going, this records which job
/// sank and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobFailure {
    /// Name of the panicking job.
    pub job: String,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job '{}' panicked: {}", self.job, self.message)
    }
}

impl std::error::Error for JobFailure {}

/// Timing record of one executed job.
#[derive(Clone, Debug)]
pub struct JobStats {
    /// The job's telemetry label.
    pub name: String,
    /// Work units processed (for accesses/second).
    pub accesses: u64,
    /// Input-source label, when the job declared one.
    pub source: Option<String>,
    /// Time between batch submission and this job starting on a worker.
    pub queued_for: Duration,
    /// Wall-clock execution time of the closure itself.
    pub ran_for: Duration,
}

impl JobStats {
    /// Accesses per second of simulation, if the job declared a count.
    pub fn throughput(&self) -> f64 {
        let secs = self.ran_for.as_secs_f64();
        if secs > 0.0 {
            self.accesses as f64 / secs
        } else {
            0.0
        }
    }
}

/// What one job produced: its result (or isolated panic) plus timing.
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// The job's return value, or the captured panic.
    pub result: Result<T, JobFailure>,
    /// Timing record.
    pub stats: JobStats,
}
