//! Engine telemetry: per-job wall clock and queue wait, per-batch
//! throughput and parallel speedup, and engine-wide counters, retained
//! across batches so a whole harness invocation can be exported as one
//! report.

use crate::job::JobStats;
use std::time::Duration;

/// Summary of one executed batch.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// The batch label passed to `Engine::run_batch`.
    pub label: String,
    /// Worker threads the batch actually used.
    pub workers: usize,
    /// Number of jobs submitted.
    pub jobs: usize,
    /// Number of jobs that panicked.
    pub failed: usize,
    /// Wall-clock time from submission to the last job finishing.
    pub elapsed: Duration,
    /// Sum of the jobs' individual execution times (the serial-equivalent
    /// wall clock; `busy / elapsed` is the realized parallel speedup).
    pub busy: Duration,
    /// Sum of the jobs' declared access counts.
    pub accesses: u64,
    /// Per-job timing records, in submission order.
    pub per_job: Vec<JobStats>,
}

impl BatchStats {
    /// Realized parallel speedup: serial-equivalent time over elapsed.
    pub fn speedup(&self) -> f64 {
        let e = self.elapsed.as_secs_f64();
        if e > 0.0 {
            self.busy.as_secs_f64() / e
        } else {
            1.0
        }
    }

    /// Aggregate simulation throughput in accesses per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let e = self.elapsed.as_secs_f64();
        if e > 0.0 {
            self.accesses as f64 / e
        } else {
            0.0
        }
    }

    /// Mean time jobs spent waiting in the queue before starting.
    pub fn mean_queue_wait(&self) -> Duration {
        if self.per_job.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.per_job.iter().map(|j| j.queued_for).sum();
        total / self.per_job.len() as u32
    }
}

/// Counters accumulated over every batch an engine has run.
#[derive(Clone, Default, Debug)]
pub struct EngineTelemetry {
    /// One record per completed batch, in execution order.
    pub batches: Vec<BatchStats>,
}

impl EngineTelemetry {
    /// Total jobs executed.
    pub fn jobs(&self) -> usize {
        self.batches.iter().map(|b| b.jobs).sum()
    }

    /// Total jobs that panicked.
    pub fn failed(&self) -> usize {
        self.batches.iter().map(|b| b.failed).sum()
    }

    /// Total wall-clock time spent inside `run_batch` calls.
    pub fn elapsed(&self) -> Duration {
        self.batches.iter().map(|b| b.elapsed).sum()
    }

    /// Total serial-equivalent execution time across all jobs.
    pub fn busy(&self) -> Duration {
        self.batches.iter().map(|b| b.busy).sum()
    }

    /// Total declared accesses across all jobs.
    pub fn accesses(&self) -> u64 {
        self.batches.iter().map(|b| b.accesses).sum()
    }

    /// Engine-wide realized speedup (batches run back to back, so this is
    /// busy time over elapsed time).
    pub fn speedup(&self) -> f64 {
        let e = self.elapsed().as_secs_f64();
        if e > 0.0 {
            self.busy().as_secs_f64() / e
        } else {
            1.0
        }
    }
}
