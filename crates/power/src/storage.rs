//! Table I: storage overhead of the three predictors.
//!
//! All figures assume the paper's 2 MB LLC with 64 B blocks (32 K blocks).

/// Blocks in the paper's 2 MB LLC.
pub const LLC_BLOCKS: u64 = 32 * 1024;

/// Which predictor a report describes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum PredictorKind {
    /// Reference trace predictor (TDBP).
    RefTrace,
    /// Counting predictor, LvP (CDBP).
    Counting,
    /// The sampling predictor (SDBP), with the paper's Table I accounting
    /// (1,536 sampler entries, §IV-C).
    Sampler,
}

impl PredictorKind {
    /// All three predictors, in Table I order.
    pub const ALL: [PredictorKind; 3] =
        [PredictorKind::RefTrace, PredictorKind::Counting, PredictorKind::Sampler];

    /// Display name as used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            PredictorKind::RefTrace => "reftrace",
            PredictorKind::Counting => "counting",
            PredictorKind::Sampler => "sampler",
        }
    }
}

/// One row of Table I.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct StorageReport {
    /// The predictor described.
    pub kind: PredictorKind,
    /// Bits in dedicated predictor structures (tables, sampler).
    pub predictor_bits: u64,
    /// Bits of metadata added to the cache (per-block fields).
    pub metadata_bits: u64,
}

impl StorageReport {
    /// Total storage in bits.
    pub const fn total_bits(&self) -> u64 {
        self.predictor_bits + self.metadata_bits
    }

    /// Total storage in kilobytes.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }

    /// Storage as a percentage of a 2 MB LLC's data capacity.
    pub fn percent_of_llc(&self) -> f64 {
        self.total_bits() as f64 / (2.0 * 1024.0 * 1024.0 * 8.0) * 100.0
    }
}

/// Computes a predictor's Table I row from its structure definitions.
pub fn predictor_storage(kind: PredictorKind) -> StorageReport {
    match kind {
        PredictorKind::RefTrace => StorageReport {
            kind,
            // 2^15 two-bit counters = 8 KB.
            predictor_bits: (1 << 15) * 2,
            // 15-bit signature + 1 dead bit per block = 16 bits × 32 K.
            metadata_bits: LLC_BLOCKS * 16,
        },
        PredictorKind::Counting => StorageReport {
            kind,
            // 2^16 entries × (4-bit count + 1-bit confidence) = 40 KB.
            predictor_bits: (1 << 16) * 5,
            // 8-bit hashed PC + two 4-bit counts + 1-bit confidence = 17
            // bits × 32 K blocks.
            metadata_bits: LLC_BLOCKS * 17,
        },
        PredictorKind::Sampler => StorageReport {
            kind,
            // 3 × 4096 two-bit counters (3 KB) + 1,536 sampler entries of
            // 15 + 15 + 1 + 1 + 4 = 36 bits (6.75 KB).
            predictor_bits: 3 * 4096 * 2 + 1536 * 36,
            // One dead bit per block.
            metadata_bits: LLC_BLOCKS,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_reftrace_is_72_kb() {
        let r = predictor_storage(PredictorKind::RefTrace);
        assert_eq!(r.predictor_bits, 8 * 1024 * 8);
        assert_eq!(r.metadata_bits, 64 * 1024 * 8);
        assert!((r.total_kb() - 72.0).abs() < 1e-9);
        assert!((r.percent_of_llc() - 3.5).abs() < 0.1);
    }

    #[test]
    fn table_1_counting_is_108_kb() {
        let r = predictor_storage(PredictorKind::Counting);
        assert_eq!(r.predictor_bits, 40 * 1024 * 8);
        assert_eq!(r.metadata_bits, 68 * 1024 * 8);
        assert!((r.total_kb() - 108.0).abs() < 1e-9);
        assert!((r.percent_of_llc() - 5.3).abs() < 0.1);
    }

    #[test]
    fn table_1_sampler_is_13_75_kb() {
        let r = predictor_storage(PredictorKind::Sampler);
        assert!((r.total_kb() - 13.75).abs() < 1e-9);
        assert!(r.percent_of_llc() < 1.0, "paper: less than 1% of LLC capacity");
    }

    #[test]
    fn sampler_is_far_smaller_than_both_competitors() {
        let s = predictor_storage(PredictorKind::Sampler).total_bits();
        let r = predictor_storage(PredictorKind::RefTrace).total_bits();
        let c = predictor_storage(PredictorKind::Counting).total_bits();
        assert!(s * 5 < r);
        assert!(s * 7 < c);
    }

    #[test]
    fn names_and_order_match_table_1() {
        let names: Vec<&str> = PredictorKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["reftrace", "counting", "sampler"]);
    }
}
