//! Storage and power accounting for dead block predictors (Tables I & II).
//!
//! Table I is exact arithmetic over the structures each predictor needs and
//! is reproduced bit-for-bit in [`storage`]. Table II in the paper comes
//! from CACTI 5.3, which we substitute with the analytic SRAM model in
//! [`power`]: leakage proportional to bits, dynamic energy proportional to
//! the bits activated per access scaled by an array-size wire factor, both
//! calibrated so the paper's baseline 2 MB LLC lands on its published
//! 2.75 W dynamic / 0.512 W leakage. The model preserves the ordering and
//! rough magnitudes of Table II (see DESIGN.md §3 for the substitution
//! rationale and EXPERIMENTS.md for measured-vs-paper values).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod power;
pub mod storage;

pub use power::{PowerModel, PowerReport};
pub use storage::{predictor_storage, PredictorKind, StorageReport};
