//! Table II: leakage and dynamic power of the predictor structures.
//!
//! Analytic CACTI substitute. Two calibrated coefficients:
//!
//! * **leakage** — proportional to retained bits, calibrated so the 2 MB
//!   LLC (data + tag + state arrays) leaks the paper's 0.512 W;
//! * **dynamic** — proportional to *bits activated per access* times a
//!   wire-length factor `sqrt(array bits)`, calibrated so the LLC's peak
//!   dynamic power is the paper's 2.75 W. Metadata embedded in the LLC
//!   data array is charged as the difference between the LLC with and
//!   without the extra bits — the same methodology the paper describes.
//!
//! Like CACTI (as the paper notes), these are *peak* dynamic figures: the
//! sampler is only touched on ~1.6% of accesses, so its real dynamic power
//! is far lower than even the number reported here.

use crate::storage::{predictor_storage, PredictorKind, LLC_BLOCKS};

/// Tag + coherence/state bits per LLC way assumed by the LLC model.
const LLC_TAG_STATE_BITS: u64 = 29;
/// Data bits per block.
const BLOCK_BITS: u64 = 512;
/// LLC associativity.
const LLC_WAYS: u64 = 16;
/// Row width (bits) read+written per access of a small tagless RAM.
const RAM_ROW_BITS: u64 = 64;

/// One structure's contribution to a predictor's power.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PowerComponent {
    /// Human-readable structure name.
    pub name: &'static str,
    /// Leakage power in watts.
    pub leakage_w: f64,
    /// Peak dynamic power in watts.
    pub dynamic_w: f64,
}

/// A full Table II row.
#[derive(Clone, PartialEq, Debug)]
pub struct PowerReport {
    /// The predictor described.
    pub kind: PredictorKind,
    /// Per-structure breakdown (predictor structures, cache metadata).
    pub components: Vec<PowerComponent>,
}

impl PowerReport {
    /// Total leakage in watts.
    pub fn leakage_w(&self) -> f64 {
        self.components.iter().map(|c| c.leakage_w).sum()
    }

    /// Total peak dynamic power in watts.
    pub fn dynamic_w(&self) -> f64 {
        self.components.iter().map(|c| c.dynamic_w).sum()
    }
}

/// The calibrated SRAM power model.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct PowerModel {
    /// Watts of leakage per retained bit.
    pub leak_per_bit: f64,
    /// Watts of peak dynamic power per (activated bit × sqrt(array bits)).
    pub dyn_coeff: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl PowerModel {
    /// Calibrates both coefficients against the paper's LLC figures.
    pub fn calibrated() -> Self {
        let llc_bits = Self::llc_total_bits() as f64;
        let leak_per_bit = 0.512 / llc_bits;
        let act = Self::llc_activated_bits(0) as f64;
        let dyn_coeff = 2.75 / (act * llc_bits.sqrt());
        PowerModel { leak_per_bit, dyn_coeff }
    }

    /// Total retained bits of the baseline LLC (data + tag/state).
    pub fn llc_total_bits() -> u64 {
        LLC_BLOCKS * (BLOCK_BITS + LLC_TAG_STATE_BITS)
    }

    /// Bits activated per LLC access when each block carries `extra` bits
    /// of predictor metadata: all ways' tags/state/data are read in
    /// parallel, extra metadata is read in all ways and written back once
    /// (the read/modify/write cycle the paper highlights).
    fn llc_activated_bits(extra: u64) -> u64 {
        LLC_WAYS * (LLC_TAG_STATE_BITS + BLOCK_BITS + extra) + extra
    }

    /// Leakage of a structure holding `bits`.
    pub fn leakage_w(&self, bits: u64) -> f64 {
        self.leak_per_bit * bits as f64
    }

    /// Peak dynamic power of an SRAM of `total_bits` activating
    /// `activated_bits` per access.
    pub fn dynamic_w(&self, total_bits: u64, activated_bits: u64) -> f64 {
        self.dyn_coeff * activated_bits as f64 * (total_bits as f64).sqrt()
    }

    /// Power attributed to `extra` metadata bits per LLC block: the
    /// difference between the LLC with and without them.
    pub fn metadata_power(&self, extra: u64) -> PowerComponent {
        let base_bits = Self::llc_total_bits();
        let with_bits = base_bits + LLC_BLOCKS * extra;
        let leakage = self.leakage_w(with_bits) - self.leakage_w(base_bits);
        let dynamic = self.dynamic_w(with_bits, Self::llc_activated_bits(extra))
            - self.dynamic_w(base_bits, Self::llc_activated_bits(0));
        PowerComponent { name: "cache metadata", leakage_w: leakage, dynamic_w: dynamic }
    }

    /// The baseline LLC's power (sanity anchor for percentages).
    pub fn llc_power(&self) -> PowerComponent {
        PowerComponent {
            name: "2MB LLC",
            leakage_w: self.leakage_w(Self::llc_total_bits()),
            dynamic_w: self.dynamic_w(Self::llc_total_bits(), Self::llc_activated_bits(0)),
        }
    }

    /// Builds the Table II row for `kind`.
    pub fn report(&self, kind: PredictorKind) -> PowerReport {
        let storage = predictor_storage(kind);
        let mut components = Vec::new();
        match kind {
            PredictorKind::RefTrace => {
                // One 8 KB tagless RAM, read/modify/write per access.
                let bits = storage.predictor_bits;
                components.push(PowerComponent {
                    name: "prediction table",
                    leakage_w: self.leakage_w(bits),
                    dynamic_w: self.dynamic_w(bits, 2 * RAM_ROW_BITS),
                });
                components.push(self.metadata_power(16));
            }
            PredictorKind::Counting => {
                // The paper models the counting table conservatively as a
                // 32 KB tagless RAM.
                let bits = 32 * 1024 * 8;
                components.push(PowerComponent {
                    name: "prediction table",
                    leakage_w: self.leakage_w(storage.predictor_bits),
                    dynamic_w: self.dynamic_w(bits, 2 * RAM_ROW_BITS),
                });
                components.push(self.metadata_power(17));
            }
            PredictorKind::Sampler => {
                // Three 1 KB banks accessed simultaneously.
                let table_bits: u64 = 3 * 4096 * 2;
                let bank_bits = table_bits / 3;
                components.push(PowerComponent {
                    name: "prediction tables",
                    leakage_w: self.leakage_w(table_bits),
                    dynamic_w: 3.0 * self.dynamic_w(bank_bits, 2 * RAM_ROW_BITS),
                });
                // Sampler tag array: all ways' 36-bit entries read, one
                // written (paper accounting: 1,536 entries).
                let sampler_bits: u64 = 1536 * 36;
                components.push(PowerComponent {
                    name: "sampler",
                    leakage_w: self.leakage_w(sampler_bits),
                    dynamic_w: self.dynamic_w(sampler_bits, 12 * 36 + 36),
                });
                components.push(self.metadata_power(1));
            }
        }
        PowerReport { kind, components }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::calibrated()
    }

    #[test]
    fn calibration_anchors_llc_power() {
        let llc = model().llc_power();
        assert!((llc.leakage_w - 0.512).abs() < 1e-9);
        assert!((llc.dynamic_w - 2.75).abs() < 1e-9);
    }

    #[test]
    fn sampler_has_lowest_power_of_all_predictors() {
        let m = model();
        let s = m.report(PredictorKind::Sampler);
        let r = m.report(PredictorKind::RefTrace);
        let c = m.report(PredictorKind::Counting);
        assert!(s.leakage_w() < r.leakage_w());
        assert!(s.leakage_w() < c.leakage_w());
        assert!(s.dynamic_w() < r.dynamic_w());
        assert!(s.dynamic_w() < c.dynamic_w());
    }

    #[test]
    fn counting_has_highest_leakage() {
        // Paper: counting 4.7% of LLC leakage > reftrace 2.9% > sampler 1.2%.
        let m = model();
        let r = m.report(PredictorKind::RefTrace).leakage_w();
        let c = m.report(PredictorKind::Counting).leakage_w();
        assert!(c > r, "counting {c} should out-leak reftrace {r}");
    }

    #[test]
    fn leakage_fractions_are_in_paper_ballpark() {
        // Paper: reftrace 2.9%, counting 4.7%, sampler 1.2% of 0.512 W.
        let m = model();
        let frac = |k| m.report(k).leakage_w() / 0.512 * 100.0;
        let r = frac(PredictorKind::RefTrace);
        let c = frac(PredictorKind::Counting);
        let s = frac(PredictorKind::Sampler);
        assert!((r - 2.9).abs() < 1.5, "reftrace {r}%");
        assert!((c - 4.7).abs() < 2.0, "counting {c}%");
        assert!(s < 2.0, "sampler {s}%");
    }

    #[test]
    fn dynamic_fractions_are_small_percentages_of_llc() {
        // Paper: sampler 3.1%, counting 11% of the 2.75 W LLC budget. Our
        // analytic model preserves "a few percent, sampler smallest".
        let m = model();
        let frac = |k| m.report(k).dynamic_w() / 2.75 * 100.0;
        for kind in PredictorKind::ALL {
            let f = frac(kind);
            assert!(f > 0.0 && f < 15.0, "{:?} = {f}% out of range", kind);
        }
        assert!(frac(PredictorKind::Sampler) < frac(PredictorKind::Counting));
    }

    #[test]
    fn metadata_difference_model_is_monotone() {
        let m = model();
        let one = m.metadata_power(1);
        let sixteen = m.metadata_power(16);
        assert!(sixteen.leakage_w > 10.0 * one.leakage_w);
        assert!(sixteen.dynamic_w > 10.0 * one.dynamic_w);
    }

    #[test]
    fn reports_have_expected_components() {
        let m = model();
        assert_eq!(m.report(PredictorKind::RefTrace).components.len(), 2);
        assert_eq!(m.report(PredictorKind::Counting).components.len(), 2);
        assert_eq!(m.report(PredictorKind::Sampler).components.len(), 3);
    }
}
