//! The incremental analysis cache (`target/analyze-cache.json`).
//!
//! Phase 1 of a scan — lex, parse, per-file rules, fact extraction — is
//! a pure function of one file's bytes, so its result can be keyed by a
//! content hash and reused verbatim. On a warm tree every file hits,
//! phase 1 collapses to hashing, and the whole scan (including every
//! cross-file graph rule, which always runs fresh over the cached
//! facts) finishes in well under a second.
//!
//! Invalidation is deliberately blunt:
//!
//! - per file, by FNV-1a 64 hash of the file's bytes;
//! - globally, by a schema tag and a digest of the active rule id list
//!   — adding, removing, or renaming a rule drops the whole cache;
//! - any parse failure of the cache file is a silent cold start, never
//!   an error (the cache is an accelerator, not a correctness input).
//!
//! Finding *routing* (allowlist, exempts, line escapes) happens after
//! cache lookup, so editing `analyze.toml` re-routes cached findings
//! without invalidating anything.

use std::collections::BTreeMap;
use std::path::Path;

use sdbp_engine::json::JsonWriter;

use crate::graph::{
    DiscardFact, EnumFact, EscapeFact, FileFacts, FnFact, PolicyNameFact, RefFact, Site,
    VariantFact,
};
use crate::rules::Finding;
use crate::workspace::FileAnalysis;

/// Cache document schema, bumped on breaking shape changes.
pub const CACHE_SCHEMA: &str = "sdbp-analyze-cache/v1";

/// FNV-1a 64-bit content hash.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The digest that invalidates the cache when the rule set changes.
#[must_use]
pub fn rules_digest() -> String {
    crate::rules::rule_ids().join(",")
}

/// One cached per-file result.
#[derive(Debug)]
pub struct CacheEntry {
    /// FNV-1a 64 of the file bytes the entry was computed from.
    pub hash: u64,
    /// The phase-1 result.
    pub analysis: FileAnalysis,
}

/// The cache: path → entry.
#[derive(Debug, Default)]
pub struct Cache {
    /// Entries by workspace-relative path.
    pub entries: BTreeMap<String, CacheEntry>,
}

impl Cache {
    /// Loads the cache at `path`. Any failure — missing file, parse
    /// error, schema or rules-digest mismatch, unknown rule id —
    /// returns an empty cache (a cold start).
    #[must_use]
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else { return Cache::default() };
        parse_cache(&text).unwrap_or_default()
    }

    /// Serializes and writes the cache to `path`.
    ///
    /// # Errors
    ///
    /// Directory creation or the write fails.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, self.render())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    fn render(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(CACHE_SCHEMA);
        w.key("rules").string(&rules_digest());
        w.key("files").begin_array();
        for (path, entry) in &self.entries {
            w.begin_object();
            w.key("path").string(path);
            w.key("hash").string(&format!("{:016x}", entry.hash));
            w.key("findings").begin_array();
            for f in &entry.analysis.findings {
                w.begin_object();
                w.key("rule").string(f.rule);
                w.key("line").uint(u64::from(f.line));
                w.key("col").uint(u64::from(f.col));
                w.key("message").string(&f.message);
                w.key("snippet").string(&f.snippet);
                w.end_object();
            }
            w.end_array();
            let facts = &entry.analysis.facts;
            w.key("facts").begin_object();
            w.key("fns").begin_array();
            for f in &facts.fns {
                w.begin_object();
                w.key("name").string(&f.name);
                w.key("result").boolean(f.returns_result);
                w.end_object();
            }
            w.end_array();
            w.key("enums").begin_array();
            for e in &facts.enums {
                w.begin_object();
                w.key("name").string(&e.name);
                w.key("variants").begin_array();
                for v in &e.variants {
                    w.begin_object();
                    w.key("name").string(&v.name);
                    write_site(&mut w, &v.site);
                    w.end_object();
                }
                w.end_array();
                w.end_object();
            }
            w.end_array();
            w.key("refs").begin_array();
            for r in &facts.refs {
                w.begin_object();
                w.key("ctx").string(&r.context_fn);
                w.key("path").string(&r.path);
                w.end_object();
            }
            w.end_array();
            w.key("discards").begin_array();
            for d in &facts.discards {
                w.begin_object();
                w.key("callees").begin_array();
                for c in &d.callees {
                    w.string(c);
                }
                w.end_array();
                w.key("ok").boolean(d.ends_in_ok);
                write_site(&mut w, &d.site);
                w.end_object();
            }
            w.end_array();
            w.key("ok_drops").begin_array();
            for s in &facts.ok_drops {
                w.begin_object();
                write_site(&mut w, s);
                w.end_object();
            }
            w.end_array();
            w.key("policy_names").begin_array();
            for p in &facts.policy_names {
                w.begin_object();
                w.key("name").string(&p.name);
                write_site(&mut w, &p.site);
                w.end_object();
            }
            w.end_array();
            w.key("iterates_registry").boolean(facts.iterates_registry);
            w.key("str_lits").begin_array();
            for s in &facts.str_lits {
                w.string(s);
            }
            w.end_array();
            w.key("escapes").begin_array();
            for e in &facts.escapes {
                w.begin_object();
                w.key("line").uint(u64::from(e.line));
                w.key("rule").string(&e.rule);
                w.key("reason").string(&e.reason);
                w.end_object();
            }
            w.end_array();
            w.end_object(); // facts
            w.end_object(); // file
        }
        w.end_array();
        w.end_object();
        let mut doc = w.finish();
        doc.push('\n');
        doc
    }
}

fn write_site(w: &mut JsonWriter, s: &Site) {
    w.key("line").uint(u64::from(s.line));
    w.key("col").uint(u64::from(s.col));
    w.key("snippet").string(&s.snippet);
}

// ---------------------------------------------------------------------
// Deserialization: a minimal recursive-descent JSON reader over the
// subset `JsonWriter` emits. Any deviation returns `None`, which the
// caller treats as a cold start.
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Json {
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn boolean(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= f64::from(u32::MAX) && n.fract() == 0.0 => {
                // Range and integrality checked on the line above.
                // sdbp-allow(lossless-codec-casts): guarded f64→u32 of a line/col number
                Some(*n as u32)
            }
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.ws();
        match self.bytes.get(self.pos)? {
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Some(Json::Obj(pairs));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.ws();
                    match self.bytes.get(self.pos)? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Some(Json::Obj(pairs));
                        }
                        _ => return None,
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Some(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.bytes.get(self.pos)? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Some(Json::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'"' => Some(Json::Str(self.string()?)),
            b't' => self.lit("true").map(|()| Json::Bool(true)),
            b'f' => self.lit("false").map(|()| Json::Bool(false)),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Some(())
        } else {
            None
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume the whole run up to the next quote or escape
                    // in one slice (both are ASCII, so a run never splits a
                    // UTF-8 character) — validating the remainder per char
                    // would make parsing quadratic in the cache size.
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
                }
            }
        }
    }
}

fn parse_cache(text: &str) -> Option<Cache> {
    let mut reader = Reader { bytes: text.as_bytes(), pos: 0 };
    let doc = reader.value()?;
    if doc.get("schema")?.str()? != CACHE_SCHEMA || doc.get("rules")?.str()? != rules_digest() {
        return None;
    }
    // Map serialized rule names back to their interned 'static ids.
    let ids = crate::rules::rule_ids();
    let intern = |name: &str| ids.iter().copied().find(|id| *id == name);

    let mut entries = BTreeMap::new();
    for file in doc.get("files")?.arr()? {
        let path = file.get("path")?.str()?.to_owned();
        let hash = u64::from_str_radix(file.get("hash")?.str()?, 16).ok()?;
        let mut findings = Vec::new();
        for f in file.get("findings")?.arr()? {
            findings.push(Finding {
                rule: intern(f.get("rule")?.str()?)?,
                path: path.clone(),
                line: f.get("line")?.u32()?,
                col: f.get("col")?.u32()?,
                message: f.get("message")?.str()?.to_owned(),
                snippet: f.get("snippet")?.str()?.to_owned(),
            });
        }
        let facts = parse_facts(file.get("facts")?)?;
        entries.insert(path, CacheEntry { hash, analysis: FileAnalysis { findings, facts } });
    }
    Some(Cache { entries })
}

fn parse_site(v: &Json) -> Option<Site> {
    Some(Site {
        line: v.get("line")?.u32()?,
        col: v.get("col")?.u32()?,
        snippet: v.get("snippet")?.str()?.to_owned(),
    })
}

fn parse_facts(v: &Json) -> Option<FileFacts> {
    let mut facts = FileFacts::default();
    for f in v.get("fns")?.arr()? {
        facts.fns.push(FnFact {
            name: f.get("name")?.str()?.to_owned(),
            returns_result: f.get("result")?.boolean()?,
        });
    }
    for e in v.get("enums")?.arr()? {
        let mut variants = Vec::new();
        for var in e.get("variants")?.arr()? {
            variants
                .push(VariantFact { name: var.get("name")?.str()?.to_owned(), site: parse_site(var)? });
        }
        facts.enums.push(EnumFact { name: e.get("name")?.str()?.to_owned(), variants });
    }
    for r in v.get("refs")?.arr()? {
        facts.refs.push(RefFact {
            context_fn: r.get("ctx")?.str()?.to_owned(),
            path: r.get("path")?.str()?.to_owned(),
        });
    }
    for d in v.get("discards")?.arr()? {
        let mut callees = Vec::new();
        for c in d.get("callees")?.arr()? {
            callees.push(c.str()?.to_owned());
        }
        facts.discards.push(DiscardFact {
            callees,
            ends_in_ok: d.get("ok")?.boolean()?,
            site: parse_site(d)?,
        });
    }
    for s in v.get("ok_drops")?.arr()? {
        facts.ok_drops.push(parse_site(s)?);
    }
    for p in v.get("policy_names")?.arr()? {
        facts
            .policy_names
            .push(PolicyNameFact { name: p.get("name")?.str()?.to_owned(), site: parse_site(p)? });
    }
    facts.iterates_registry = v.get("iterates_registry")?.boolean()?;
    for s in v.get("str_lits")?.arr()? {
        facts.str_lits.push(s.str()?.to_owned());
    }
    for e in v.get("escapes")?.arr()? {
        facts.escapes.push(EscapeFact {
            line: e.get("line")?.u32()?,
            rule: e.get("rule")?.str()?.to_owned(),
            reason: e.get("reason")?.str()?.to_owned(),
        });
    }
    Some(facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::extract;
    use crate::source::SourceFile;

    fn analysis_of(path: &str, src: &str) -> FileAnalysis {
        let file = SourceFile::from_source(path, src.to_owned());
        let mut findings = Vec::new();
        for rule in crate::rules::all_rules() {
            rule.check(&file, &mut findings);
        }
        FileAnalysis { findings, facts: extract(&file) }
    }

    #[test]
    fn fnv64_matches_reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"hello"), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn cache_roundtrips_findings_and_facts_exactly() {
        let src = "pub enum Wire { Ping, Pong }\n\
             pub fn fallible() -> Result<(), E> { Ok(()) }\n\
             fn f(x: Option<u32>) -> u32 { let _ = sock.write_all(b\"q\\n\"); x.unwrap() }\n\
             // sdbp-allow(no-panic-paths): unit test escape\n";
        let mut cache = Cache::default();
        let analysis = analysis_of("crates/traceio/src/reader.rs", src);
        assert!(!analysis.findings.is_empty(), "fixture should trip no-panic-paths");
        cache.entries.insert(
            "crates/traceio/src/reader.rs".to_owned(),
            CacheEntry { hash: fnv64(src.as_bytes()), analysis: analysis_of("crates/traceio/src/reader.rs", src) },
        );

        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-cache-{}", std::process::id()));
        let path = tmp.join("analyze-cache.json");
        cache.save(&path).expect("save");
        let loaded = Cache::load(&path);
        std::fs::remove_dir_all(&tmp).expect("cleanup");

        assert_eq!(loaded.entries.len(), 1);
        let (orig, round) = (
            &cache.entries["crates/traceio/src/reader.rs"],
            &loaded.entries["crates/traceio/src/reader.rs"],
        );
        assert_eq!(orig.hash, round.hash);
        assert_eq!(orig.analysis.findings, round.analysis.findings);
        assert_eq!(orig.analysis.facts, round.analysis.facts);
    }

    #[test]
    fn missing_garbage_and_stale_digest_caches_are_cold_starts() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-cache2-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).expect("mkdir");
        let path = tmp.join("cache.json");
        assert!(Cache::load(&path).entries.is_empty(), "missing file");
        std::fs::write(&path, "{not json").expect("write");
        assert!(Cache::load(&path).entries.is_empty(), "garbage");
        std::fs::write(
            &path,
            format!("{{\"schema\":\"{CACHE_SCHEMA}\",\"rules\":\"other-rules\",\"files\":[]}}"),
        )
        .expect("write");
        assert!(Cache::load(&path).entries.is_empty(), "stale rules digest");
        std::fs::remove_dir_all(&tmp).expect("cleanup");
    }
}
