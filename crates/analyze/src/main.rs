//! `sdbp-analyze` binary: thin wrapper over [`sdbp_analyze::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(sdbp_analyze::run_cli(&args));
}
