//! Workspace discovery and the two-phase scan driver.
//!
//! **Phase 1 (per file, parallel, cached):** every `.rs` file under the
//! root is lexed, parsed, run through the per-file rules, and reduced
//! to [`crate::graph::FileFacts`]. The phase fans out over the
//! `sdbp-engine` pool; results are aggregated in submission order, so
//! `--jobs 8` output is byte-identical to `--serial`. Each file's
//! result is a pure function of its bytes and is reused from
//! `target/analyze-cache.json` when the content hash matches.
//!
//! **Phase 2 (cross-file, serial, always fresh):** the facts are joined
//! into a [`Graph`] and the graph rules run over it — these are the
//! contract checks (wire exhaustiveness, registry coverage, Result
//! discipline) that no single file can decide.
//!
//! Raw findings from both phases then pass through three routing gates,
//! each demanding a written justification: `analyze.toml` `[[exempt]]`
//! entries (rule opt-outs — rules apply workspace-wide by default),
//! `[[allow]]` entries (audited suppressions), and per-line
//! `// sdbp-allow(rule): reason` escapes. Escapes without a reason text
//! are ignored — an unexplained suppression is no suppression.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use sdbp_engine::{Engine, Job};

use crate::cache::{fnv64, Cache, CacheEntry};
use crate::config::Config;
use crate::graph::{extract, EscapeFact, FileFacts, Graph, GraphFile};
use crate::report::{sort_findings, Allowed, Report};
use crate::rules::{all_rules, graph_rules, Finding, GraphContext};
use crate::source::SourceFile;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Path prefixes excluded from the scan: the fixture corpus is
/// *deliberately* full of violations.
const SKIP_PREFIXES: &[&str] = &["crates/analyze/tests/fixtures/"];

/// The phase-1 result for one file: per-file rule findings plus the
/// facts the graph rules consume. This is the unit the incremental
/// cache stores.
#[derive(Clone, Debug)]
pub struct FileAnalysis {
    /// Raw (unrouted) per-file findings.
    pub findings: Vec<Finding>,
    /// Extracted facts.
    pub facts: FileFacts,
}

/// Scan configuration beyond the rule set.
#[derive(Debug)]
pub struct ScanOptions {
    /// Phase-1 worker threads; `1` is the serial reference path.
    pub jobs: usize,
    /// Incremental cache location; `None` disables the cache.
    pub cache_path: Option<PathBuf>,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions { jobs: 1, cache_path: None }
    }
}

/// Finds the workspace root at or above `start`: the nearest ancestor
/// holding a `Cargo.toml` with a `[workspace]` section.
///
/// # Errors
///
/// No such ancestor exists.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found at or above {}",
                start.display()
            ));
        }
    }
}

/// Collects every workspace-relative `.rs` path under `root`, sorted.
///
/// # Errors
///
/// Directory reads fail.
pub fn collect_rust_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_unstable();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} escapes root: {e}", path.display()))?;
            let rel = rel.to_string_lossy().replace('\\', "/");
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs phase 1 for one file already read into `src`.
#[must_use]
pub fn analyze_file(rel_path: &str, src: String) -> FileAnalysis {
    let file = SourceFile::from_source(rel_path, src);
    let mut findings = Vec::new();
    for rule in all_rules() {
        rule.check(&file, &mut findings);
    }
    FileAnalysis { findings, facts: extract(&file) }
}

/// Scans the workspace at `root` under `config`, returning the filtered,
/// deterministically-ordered report.
///
/// # Errors
///
/// File reads fail; individual findings never error.
pub fn analyze_workspace(
    root: &Path,
    config: &Config,
    opts: &ScanOptions,
) -> Result<Report, String> {
    let files = collect_rust_files(root)?;
    let cache = match &opts.cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };

    // Phase 1: per-file analysis over the engine pool. Job results come
    // back in submission order, which keeps every downstream consumer —
    // cache serialization, graph assembly, finding order — independent
    // of the worker count.
    type FileOutcome = Result<(u64, FileAnalysis, bool), String>;
    let engine = Engine::with_workers(opts.jobs.max(1));
    let jobs: Vec<Job<'_, FileOutcome>> = files
        .iter()
        .map(|rel| {
            let rel = rel.clone();
            let cache = &cache;
            let abs = root.join(&rel);
            Job::new(rel.clone(), move || {
                let bytes = std::fs::read(&abs)
                    .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
                let hash = fnv64(&bytes);
                if let Some(entry) = cache.entries.get(&rel) {
                    if entry.hash == hash {
                        return Ok((hash, entry.analysis.clone(), true));
                    }
                }
                let src = String::from_utf8(bytes)
                    .map_err(|e| format!("{}: not UTF-8: {e}", abs.display()))?;
                Ok((hash, analyze_file(&rel, src), false))
            })
        })
        .collect();
    let outcomes = engine.run_batch("analyze", jobs).expect_all();

    let mut analyses: Vec<(String, u64, FileAnalysis)> = Vec::with_capacity(files.len());
    let mut cache_hits = 0usize;
    for (rel, outcome) in files.iter().zip(outcomes) {
        let (hash, analysis, hit) = outcome?;
        cache_hits += usize::from(hit);
        analyses.push((rel.clone(), hash, analysis));
    }
    drop(cache);

    if let Some(p) = &opts.cache_path {
        let mut next = Cache::default();
        for (rel, hash, analysis) in &analyses {
            next.entries.insert(
                rel.clone(),
                CacheEntry { hash: *hash, analysis: analysis.clone() },
            );
        }
        if let Err(e) = next.save(p) {
            eprintln!("sdbp-analyze: warning: {e} (continuing without cache)");
        }
    }

    // Phase 2: graph assembly and cross-file rules.
    let mut escapes_by_path: BTreeMap<String, Vec<EscapeFact>> = BTreeMap::new();
    let mut raw: Vec<Finding> = Vec::new();
    let mut graph_files = Vec::with_capacity(analyses.len());
    for (rel, _, analysis) in analyses {
        escapes_by_path.insert(rel.clone(), analysis.facts.escapes.clone());
        raw.extend(analysis.findings);
        graph_files.push(GraphFile { path: rel, facts: analysis.facts });
    }
    let graph = Graph::build(graph_files);
    let ctx = GraphContext { root };
    for rule in graph_rules() {
        rule.check(&graph, &ctx, &mut raw);
    }

    // Routing.
    let mut report =
        Report { files_scanned: files.len(), cache_hits, ..Report::default() };
    for finding in raw {
        route_finding(&escapes_by_path, config, finding, &mut report);
    }
    sort_findings(&mut report.findings);
    report.allowed.sort_by(|a, b| {
        (a.finding.path.as_str(), a.finding.line, a.finding.col, a.finding.rule)
            .cmp(&(b.finding.path.as_str(), b.finding.line, b.finding.col, b.finding.rule))
    });
    Ok(report)
}

/// Sends `finding` through the routing gates: exempt (dropped, counted),
/// allowlist, line escape, or the failing bucket.
fn route_finding(
    escapes_by_path: &BTreeMap<String, Vec<EscapeFact>>,
    config: &Config,
    finding: Finding,
    report: &mut Report,
) {
    if config.exempts(finding.rule, &finding.path).is_some() {
        report.exempted += 1;
        return;
    }
    if let Some(entry) = config.allows(finding.rule, &finding.path) {
        report.allowed.push(Allowed {
            finding,
            source: "analyze.toml",
            reason: entry.reason.clone(),
        });
        return;
    }
    let escapes = escapes_by_path.get(&finding.path).map_or(&[][..], Vec::as_slice);
    if let Some(reason) = line_escape_reason(escapes, &finding) {
        report.allowed.push(Allowed { finding, source: "line-escape", reason });
        return;
    }
    report.findings.push(finding);
}

/// Looks for an `sdbp-allow(<rule>): <reason>` escape on the finding's
/// line or the line directly above (reasonless escapes were already
/// dropped at fact extraction).
fn line_escape_reason(escapes: &[EscapeFact], finding: &Finding) -> Option<String> {
    escapes
        .iter()
        .find(|e| {
            e.rule == finding.rule && (e.line == finding.line || e.line + 1 == finding.line)
        })
        .map(|e| e.reason.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            col: 1,
            message: String::new(),
            snippet: String::new(),
        }
    }

    fn escapes_of(path: &str, src: &str) -> BTreeMap<String, Vec<EscapeFact>> {
        let analysis = analyze_file(path, src.to_owned());
        let mut map = BTreeMap::new();
        map.insert(path.to_owned(), analysis.facts.escapes);
        map
    }

    #[test]
    fn line_escape_same_line_and_line_above() {
        let src = "let a = x.unwrap(); // sdbp-allow(no-panic-paths): checked above\n\
                   // sdbp-allow(no-panic-paths): slice length proven\n\
                   let b = y[0];\n\
                   let c = z.unwrap();\n";
        let path = "crates/engine/src/lib.rs";
        let map = escapes_of(path, src);
        let escapes = map.get(path).expect("escapes recorded");
        assert!(line_escape_reason(escapes, &finding(path, 1, "no-panic-paths")).is_some());
        assert!(line_escape_reason(escapes, &finding(path, 3, "no-panic-paths")).is_some());
        assert!(line_escape_reason(escapes, &finding(path, 4, "no-panic-paths")).is_none());
    }

    #[test]
    fn escape_must_name_the_rule_and_carry_a_reason() {
        let src = "let a = x.unwrap(); // sdbp-allow(seed-discipline): wrong rule\n\
                   let b = y.unwrap(); // sdbp-allow(no-panic-paths)\n";
        let path = "crates/engine/src/lib.rs";
        let map = escapes_of(path, src);
        let escapes = map.get(path).expect("escapes recorded");
        assert!(line_escape_reason(escapes, &finding(path, 1, "no-panic-paths")).is_none());
        assert!(
            line_escape_reason(escapes, &finding(path, 2, "no-panic-paths")).is_none(),
            "reasonless escape must not suppress"
        );
    }

    #[test]
    fn route_prefers_exempt_then_config_then_escape_then_fails() {
        let cfg = Config::parse(
            "[[exempt]]\nrule = \"no-panic-paths\"\npath = \"crates/bench/\"\n\
             reason = \"not a sim path\"\n\
             [[allow]]\nrule = \"no-panic-paths\"\npath = \"crates/engine/src/\"\n\
             reason = \"poisoning\"\n",
            &crate::rules::rule_ids(),
        )
        .expect("valid config");
        let empty = BTreeMap::new();
        let mut report = Report::default();
        route_finding(
            &empty,
            &cfg,
            finding("crates/bench/src/micro.rs", 1, "no-panic-paths"),
            &mut report,
        );
        assert_eq!(report.exempted, 1);
        assert!(report.allowed.is_empty() && report.findings.is_empty());

        route_finding(
            &empty,
            &cfg,
            finding("crates/engine/src/pool.rs", 1, "no-panic-paths"),
            &mut report,
        );
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.allowed[0].source, "analyze.toml");
        assert!(report.findings.is_empty());

        route_finding(
            &empty,
            &cfg,
            finding("crates/cache/src/recorder.rs", 1, "no-panic-paths"),
            &mut report,
        );
        assert_eq!(report.findings.len(), 1, "no allow entry for cache");
    }

    #[test]
    fn collect_skips_target_and_fixture_corpus() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-walk-{}", std::process::id()));
        let mk = |rel: &str| {
            let p = tmp.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(&p, "fn x() {}\n").expect("write");
        };
        mk("crates/a/src/lib.rs");
        mk("target/debug/build/generated.rs");
        mk("crates/analyze/tests/fixtures/bad/panic.rs");
        let files = collect_rust_files(&tmp).expect("walk");
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        assert_eq!(files, vec!["crates/a/src/lib.rs".to_owned()]);
    }

    #[test]
    fn parallel_scan_matches_serial_byte_for_byte() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-par-{}", std::process::id()));
        for i in 0..12 {
            let p = tmp.join(format!("crates/traceio/src/f{i}.rs"));
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(&p, format!("fn f{i}(x: Option<u32>) -> u32 {{ x.unwrap() }}\n"))
                .expect("write");
        }
        let cfg = Config::default();
        let serial = analyze_workspace(&tmp, &cfg, &ScanOptions { jobs: 1, cache_path: None })
            .expect("serial scan");
        let parallel = analyze_workspace(&tmp, &cfg, &ScanOptions { jobs: 8, cache_path: None })
            .expect("parallel scan");
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        assert_eq!(serial.findings, parallel.findings);
        assert_eq!(
            crate::report::render_json(&serial, &crate::rules::all_rule_info()),
            crate::report::render_json(&parallel, &crate::rules::all_rule_info()),
            "parallel report must be byte-identical to serial"
        );
        assert_eq!(serial.findings.len(), 12);
    }

    #[test]
    fn warm_cache_reuses_every_file_and_detects_edits() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-warm-{}", std::process::id()));
        let src_dir = tmp.join("crates/traceio/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        std::fs::write(src_dir.join("a.rs"), "fn a(x: Option<u32>) -> u32 { x.unwrap() }\n")
            .expect("write");
        std::fs::write(src_dir.join("b.rs"), "/// Fine.\npub fn b() {}\n").expect("write");
        let cfg = Config::default();
        let opts = ScanOptions { jobs: 2, cache_path: Some(tmp.join("target/cache.json")) };

        let cold = analyze_workspace(&tmp, &cfg, &opts).expect("cold scan");
        assert_eq!(cold.cache_hits, 0);
        let warm = analyze_workspace(&tmp, &cfg, &opts).expect("warm scan");
        assert_eq!(warm.cache_hits, 2, "all files reused");
        assert_eq!(cold.findings, warm.findings);

        std::fs::write(src_dir.join("b.rs"), "/// Edited.\npub fn b() -> u32 { 1 }\n")
            .expect("edit");
        let edited = analyze_workspace(&tmp, &cfg, &opts).expect("edited scan");
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        assert_eq!(edited.cache_hits, 1, "only the untouched file reuses");
    }

    #[test]
    fn analyze_on_real_rules_is_deterministic() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-det-{}", std::process::id()));
        let p = tmp.join("crates/traceio/src/reader.rs");
        std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
        std::fs::write(&p, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n").expect("write");
        let cfg = Config::default();
        let opts = ScanOptions::default();
        let a = analyze_workspace(&tmp, &cfg, &opts).expect("scan");
        let b = analyze_workspace(&tmp, &cfg, &opts).expect("scan");
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, "no-panic-paths");
    }
}
