//! Workspace discovery and the scan driver.
//!
//! Walks every `.rs` file under the workspace root in sorted order
//! (skipping `target/`, `.git/`, and the linter's own `tests/fixtures`
//! corpus of intentionally-bad snippets), runs every rule over every
//! file, then filters the raw findings through the two escape hatches:
//! `analyze.toml` allowlist entries and per-line
//! `// sdbp-allow(rule): reason` escapes. Escapes without a reason text
//! are ignored — an unexplained suppression is no suppression.

use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::report::{sort_findings, Allowed, Report};
use crate::rules::{Finding, Rule};
use crate::source::SourceFile;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Path prefixes excluded from the scan: the fixture corpus is
/// *deliberately* full of violations.
const SKIP_PREFIXES: &[&str] = &["crates/analyze/tests/fixtures/"];

/// Finds the workspace root at or above `start`: the nearest ancestor
/// holding a `Cargo.toml` with a `[workspace]` section.
///
/// # Errors
///
/// No such ancestor exists.
pub fn find_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("cannot read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace Cargo.toml found at or above {}",
                start.display()
            ));
        }
    }
}

/// Collects every workspace-relative `.rs` path under `root`, sorted.
///
/// # Errors
///
/// Directory reads fail.
pub fn collect_rust_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_unstable();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} escapes root: {e}", path.display()))?;
            let rel = rel.to_string_lossy().replace('\\', "/");
            if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                continue;
            }
            out.push(rel);
        }
    }
    Ok(())
}

/// Scans the workspace at `root` with `rules` under `config`, returning
/// the filtered, deterministically-ordered report.
///
/// # Errors
///
/// File reads fail; individual findings never error.
pub fn analyze_workspace(
    root: &Path,
    rules: &[Box<dyn Rule>],
    config: &Config,
) -> Result<Report, String> {
    let files = collect_rust_files(root)?;
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for rel in &files {
        let abs = root.join(rel);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let file = SourceFile::from_source(rel, src);
        let mut raw = Vec::new();
        for rule in rules {
            rule.check(&file, &mut raw);
        }
        for finding in raw {
            route_finding(&file, config, finding, &mut report);
        }
    }
    sort_findings(&mut report.findings);
    report.allowed.sort_by(|a, b| {
        (a.finding.path.as_str(), a.finding.line, a.finding.col, a.finding.rule)
            .cmp(&(b.finding.path.as_str(), b.finding.line, b.finding.col, b.finding.rule))
    });
    Ok(report)
}

/// Sends `finding` to the failing or the allowed bucket.
fn route_finding(file: &SourceFile, config: &Config, finding: Finding, report: &mut Report) {
    if let Some(entry) = config.allows(finding.rule, &finding.path) {
        report.allowed.push(Allowed {
            finding,
            source: "analyze.toml",
            reason: entry.reason.clone(),
        });
        return;
    }
    if let Some(reason) = line_escape_reason(file, &finding) {
        report.allowed.push(Allowed { finding, source: "line-escape", reason });
        return;
    }
    report.findings.push(finding);
}

/// Looks for `sdbp-allow(<rule>): <reason>` in a comment on the
/// finding's line or the line directly above. Returns the reason text;
/// an escape with an empty reason does not count.
fn line_escape_reason(file: &SourceFile, finding: &Finding) -> Option<String> {
    for line in [finding.line, finding.line.saturating_sub(1)] {
        if line == 0 {
            continue;
        }
        let text = file.line_text(line);
        let Some(pos) = text.find("sdbp-allow(") else { continue };
        // Only honor the marker inside a comment, not in string data.
        if !text[..pos].contains("//") {
            continue;
        }
        let rest = &text[pos + "sdbp-allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        if rest[..close].trim() != finding.rule {
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            continue;
        }
        return Some(reason.to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::all_rules;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::from_source(path, src.to_owned())
    }

    fn finding(path: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            col: 1,
            message: String::new(),
            snippet: String::new(),
        }
    }

    #[test]
    fn line_escape_same_line_and_line_above() {
        let src = "let a = x.unwrap(); // sdbp-allow(no-panic-paths): checked above\n\
                   // sdbp-allow(no-panic-paths): slice length proven\n\
                   let b = y[0];\n\
                   let c = z.unwrap();\n";
        let f = file("crates/engine/src/lib.rs", src);
        assert!(line_escape_reason(&f, &finding(&f.rel_path, 1, "no-panic-paths")).is_some());
        assert!(line_escape_reason(&f, &finding(&f.rel_path, 3, "no-panic-paths")).is_some());
        assert!(line_escape_reason(&f, &finding(&f.rel_path, 4, "no-panic-paths")).is_none());
    }

    #[test]
    fn escape_must_name_the_rule_and_carry_a_reason() {
        let src = "let a = x.unwrap(); // sdbp-allow(seed-discipline): wrong rule\n\
                   let b = y.unwrap(); // sdbp-allow(no-panic-paths)\n";
        let f = file("crates/engine/src/lib.rs", src);
        assert!(line_escape_reason(&f, &finding(&f.rel_path, 1, "no-panic-paths")).is_none());
        assert!(
            line_escape_reason(&f, &finding(&f.rel_path, 2, "no-panic-paths")).is_none(),
            "reasonless escape must not suppress"
        );
    }

    #[test]
    fn route_prefers_config_then_escape_then_fails() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"no-panic-paths\"\npath = \"crates/engine/src/\"\n\
             reason = \"poisoning\"\n",
            &crate::rules::rule_ids(),
        )
        .expect("valid config");
        let f = file("crates/engine/src/pool.rs", "let a = x.unwrap();\n");
        let mut report = Report::default();
        route_finding(&f, &cfg, finding(&f.rel_path, 1, "no-panic-paths"), &mut report);
        assert_eq!(report.allowed.len(), 1);
        assert_eq!(report.allowed[0].source, "analyze.toml");
        assert!(report.findings.is_empty());

        let g = file("crates/cache/src/recorder.rs", "let a = x.unwrap();\n");
        route_finding(&g, &cfg, finding(&g.rel_path, 1, "no-panic-paths"), &mut report);
        assert_eq!(report.findings.len(), 1, "no allow entry for cache");
    }

    #[test]
    fn collect_skips_target_and_fixture_corpus() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-walk-{}", std::process::id()));
        let mk = |rel: &str| {
            let p = tmp.join(rel);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(&p, "fn x() {}\n").expect("write");
        };
        mk("crates/a/src/lib.rs");
        mk("target/debug/build/generated.rs");
        mk("crates/analyze/tests/fixtures/bad/panic.rs");
        let files = collect_rust_files(&tmp).expect("walk");
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        assert_eq!(files, vec!["crates/a/src/lib.rs".to_owned()]);
    }

    #[test]
    fn analyze_on_real_rules_is_deterministic() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-det-{}", std::process::id()));
        let p = tmp.join("crates/traceio/src/reader.rs");
        std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
        std::fs::write(&p, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n").expect("write");
        let rules = all_rules();
        let cfg = Config::default();
        let a = analyze_workspace(&tmp, &rules, &cfg).expect("scan");
        let b = analyze_workspace(&tmp, &rules, &cfg).expect("scan");
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        assert_eq!(a.findings, b.findings);
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].rule, "no-panic-paths");
    }
}
