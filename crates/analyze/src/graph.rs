//! Per-file *facts* and the cross-file workspace graph.
//!
//! Per-file rules can only see one file at a time; the contract rules
//! (`wire-exhaustive`, `registry-coverage`, `result-discipline`) need to
//! relate declarations in one file to uses in another. The bridge is a
//! two-phase design:
//!
//! 1. **Fact extraction** (parallel, cached): each file is lexed, parsed
//!    and reduced to a small, serializable [`FileFacts`] — function
//!    signatures, enum variant sites, `Path::Segment` references with
//!    their enclosing function, discarded-expression sites, policy-name
//!    registrations. Everything a cross-file rule could later anchor a
//!    finding at carries its line/column/snippet *here*, so phase 2
//!    never needs the source text again.
//! 2. **Graph assembly** (serial, cheap): the facts of every file are
//!    joined into a [`Graph`] — e.g. the set of workspace functions
//!    returning `Result` — and the graph rules run over it.
//!
//! Because [`FileFacts`] is a pure function of file content, it is what
//! the incremental cache (`target/analyze-cache.json`) stores per file:
//! a warm run skips lexing and parsing entirely and still runs every
//! cross-file rule against fresh facts.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// A source location with its diagnostic context, precomputed at
/// extraction time so graph rules can build findings without the file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Trimmed text of the line, for diagnostics.
    pub snippet: String,
}

/// One function (or method) signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FnFact {
    /// Function name.
    pub name: String,
    /// Whether the return type mentions `Result`.
    pub returns_result: bool,
}

/// One enum variant declaration site.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VariantFact {
    /// Variant name.
    pub name: String,
    /// Declaration site.
    pub site: Site,
}

/// One enum with its variants.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EnumFact {
    /// Enum name.
    pub name: String,
    /// Variants in declaration order.
    pub variants: Vec<VariantFact>,
}

/// One `Type::Segment` path reference (use or pattern) in non-test code.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct RefFact {
    /// Name of the enclosing function (`""` at item level).
    pub context_fn: String,
    /// The two-segment path text, e.g. `Frame::Hello`.
    pub path: String,
}

/// One discarded expression statement (`let _ = ...;`) in non-test code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiscardFact {
    /// Names of calls made at the top level of the discarded expression
    /// (macro callees carry a `!` suffix, e.g. `writeln!`).
    pub callees: Vec<String>,
    /// Whether the discarded expression ends in `.ok()` (an explicit
    /// Result-to-Option drop).
    pub ends_in_ok: bool,
    /// The discard site.
    pub site: Site,
}

/// One policy registration (`name: "spec"`) in non-test code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PolicyNameFact {
    /// The registered spec name.
    pub name: String,
    /// The registration site.
    pub site: Site,
}

/// One `sdbp-allow(rule): reason` escape comment.
///
/// Extracted into facts (rather than re-read from source at routing
/// time) so suppression still works when a file's analysis comes from
/// the incremental cache and the source was never loaded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EscapeFact {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The rule id named in the escape.
    pub rule: String,
    /// The justification text. Empty reasons are dropped at extraction:
    /// an unexplained suppression is no suppression.
    pub reason: String,
}

/// Everything the cross-file rules need to know about one file.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct FileFacts {
    /// Function signatures (all nesting levels).
    pub fns: Vec<FnFact>,
    /// Enums with variant declaration sites.
    pub enums: Vec<EnumFact>,
    /// Deduplicated `Type::Segment` references in non-test code.
    pub refs: Vec<RefFact>,
    /// `let _ = ...;` discard statements in non-test code.
    pub discards: Vec<DiscardFact>,
    /// Statement-terminal `.ok();` drops (expression statements only;
    /// `let`-bound conversions are not drops) in non-test code.
    pub ok_drops: Vec<Site>,
    /// `name: "literal"` registrations in non-test code.
    pub policy_names: Vec<PolicyNameFact>,
    /// Whether the file iterates a whole registry via `.entries()`.
    pub iterates_registry: bool,
    /// Deduplicated short plain string literals in non-test code (for
    /// coverage checks like "does `sample_smoke` name this policy").
    pub str_lits: Vec<String>,
    /// `sdbp-allow` escape comments, for finding suppression.
    pub escapes: Vec<EscapeFact>,
}

/// Whether a return-type string names the `Result` type itself — as a
/// standalone identifier, not a substring of e.g. `ReplayResult`.
fn mentions_result(ret: &str) -> bool {
    let mut rest = ret;
    while let Some(pos) = rest.find("Result") {
        let before_ok = rest[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after_ok = rest[pos + "Result".len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "Result".len()..];
    }
    false
}

/// Extracts [`FileFacts`] from a lexed+parsed file.
pub fn extract(file: &SourceFile) -> FileFacts {
    let mut facts = FileFacts::default();
    let toks = &file.lexed.tokens;
    let site = |byte: usize| {
        let (line, col) = file.line_col(byte);
        Site { line, col, snippet: file.line_text(line).trim().to_owned() }
    };

    // Function signatures and enums come straight from the AST.
    for item in file.ast.walk() {
        match &item.kind {
            crate::parser::ItemKind::Fn { ret } => facts.fns.push(FnFact {
                name: item.name.clone(),
                returns_result: mentions_result(ret),
            }),
            crate::parser::ItemKind::Enum { variants } => {
                if file.in_test(item.start) {
                    continue;
                }
                facts.enums.push(EnumFact {
                    name: item.name.clone(),
                    variants: variants
                        .iter()
                        .map(|v| VariantFact { name: v.name.clone(), site: site(v.start) })
                        .collect(),
                });
            }
            _ => {}
        }
    }

    // Token-pattern facts.
    let text = |i: usize| toks.get(i).map_or("", |t| file.text(t));
    let is_punct = |i: usize, c: &str| {
        toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && text(i) == c
    };
    let mut refs = BTreeSet::new();
    let mut lits = BTreeSet::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if file.in_test(t.start) {
            i += 1;
            continue;
        }
        // `Type::Segment` references (uses and match patterns alike).
        if t.kind == TokenKind::Ident
            && text(i).starts_with(|c: char| c.is_ascii_uppercase())
            && is_punct(i + 1, ":")
            && is_punct(i + 2, ":")
            && toks.get(i + 3).is_some_and(|n| n.kind == TokenKind::Ident)
            && text(i + 3).starts_with(|c: char| c.is_ascii_uppercase())
        {
            let context_fn =
                file.ast.enclosing_fn(i).map(|f| f.name.clone()).unwrap_or_default();
            refs.insert(RefFact { context_fn, path: format!("{}::{}", text(i), text(i + 3)) });
        }
        // `name: "literal"` policy registrations.
        if t.kind == TokenKind::Ident
            && text(i) == "name"
            && is_punct(i + 1, ":")
            && !is_punct(i + 2, ":")
            && toks.get(i + 2).is_some_and(|n| n.kind == TokenKind::Str)
        {
            let lit = text(i + 2);
            let inner = lit.trim_matches('"');
            if !inner.is_empty() && inner.len() + 2 == lit.len() {
                facts.policy_names.push(PolicyNameFact {
                    name: inner.to_owned(),
                    site: site(toks[i + 2].start),
                });
            }
        }
        // `.entries()` whole-registry iteration.
        if is_punct(i, ".") && text(i + 1) == "entries" && is_punct(i + 2, "(") {
            facts.iterates_registry = true;
        }
        // Short plain string literals, for coverage checks.
        if t.kind == TokenKind::Str {
            let lit = text(i);
            if let Some(inner) = lit.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                if !inner.is_empty() && inner.len() <= 64 && !inner.contains('\\') {
                    lits.insert(inner.to_owned());
                }
            }
        }
        // `let _ = <expr> ;` discards. The discarded expression's tokens
        // are still scanned by the other patterns (a `Type::Variant` ref
        // inside a discard is still a ref — e.g. an error reply built
        // inside a best-effort write).
        if t.kind == TokenKind::Ident && text(i) == "let" && text(i + 1) == "_" && is_punct(i + 2, "=")
        {
            let (discard, _) = scan_discard(file, i);
            facts.discards.push(DiscardFact {
                callees: discard.0,
                ends_in_ok: discard.1,
                site: site(t.start),
            });
            i += 3;
            continue;
        }
        // Statement-terminal `.ok();` on an expression statement.
        if is_punct(i, ".") && text(i + 1) == "ok" && is_punct(i + 2, "(") && is_punct(i + 3, ")")
            && is_punct(i + 4, ";")
            && !statement_is_let(file, i)
        {
            facts.ok_drops.push(site(toks[i].start));
            i += 5;
            continue;
        }
        i += 1;
    }
    facts.refs = refs.into_iter().collect();
    facts.str_lits = lits.into_iter().collect();

    // `sdbp-allow(rule): reason` escapes, from the comment stream.
    for c in &file.lexed.comments {
        let Some(body) = file.src.get(c.start..c.end) else { continue };
        let Some(pos) = body.find("sdbp-allow(") else { continue };
        let rest = &body[pos + "sdbp-allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if rule.is_empty() || reason.is_empty() {
            continue;
        }
        facts.escapes.push(EscapeFact {
            line: file.line_col(c.start).0,
            rule: rule.to_owned(),
            reason: reason.to_owned(),
        });
    }
    facts
}

/// Scans the `let _ = <expr>;` starting at token index `let_idx`,
/// returning `((top-level callees, ends_in_ok), index past the `;`)`.
fn scan_discard(file: &SourceFile, let_idx: usize) -> ((Vec<String>, bool), usize) {
    let toks = &file.lexed.tokens;
    let text = |i: usize| toks.get(i).map_or("", |t| file.text(t));
    let is_punct = |i: usize, c: &str| {
        toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && text(i) == c
    };
    let mut callees = Vec::new();
    let mut depth = 0usize;
    let mut j = let_idx + 3; // past `let _ =`
    let mut last4: [String; 4] = Default::default();
    while j < toks.len() {
        if depth == 0 && is_punct(j, ";") {
            j += 1;
            break;
        }
        if is_punct(j, "(") || is_punct(j, "[") || is_punct(j, "{") {
            // A call at the top level of the expression?
            if depth == 0 && is_punct(j, "(") {
                let prev = toks.get(j.wrapping_sub(1));
                if prev.is_some_and(|p| p.kind == TokenKind::Ident) {
                    let name = text(j - 1);
                    if !matches!(name, "if" | "match" | "while" | "for" | "return") {
                        callees.push(name.to_owned());
                    }
                } else if is_punct(j - 1, "!")
                    && toks.get(j.wrapping_sub(2)).is_some_and(|p| p.kind == TokenKind::Ident)
                {
                    callees.push(format!("{}!", text(j - 2)));
                }
            }
            depth += 1;
        } else if is_punct(j, ")") || is_punct(j, "]") || is_punct(j, "}") {
            depth = depth.saturating_sub(1);
        }
        last4.rotate_left(1);
        last4[3] = text(j).to_owned();
        j += 1;
    }
    let ends_in_ok = last4[0] == "." && last4[1] == "ok" && last4[2] == "(" && last4[3] == ")";
    ((callees, ends_in_ok), j)
}

/// Whether the statement containing token index `i` starts with `let`
/// (scanning back to the previous `;`, `{`, or `}`).
fn statement_is_let(file: &SourceFile, i: usize) -> bool {
    let toks = &file.lexed.tokens;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        let text = file.text(t);
        if t.kind == TokenKind::Punct && matches!(text, ";" | "{" | "}") {
            return file.lexed.tokens.get(j + 1).is_some_and(|n| file.text(n) == "let");
        }
        if j == 0 {
            break;
        }
    }
    toks.first().is_some_and(|t| file.text(t) == "let")
}

/// One analyzed file: its path plus extracted facts.
#[derive(Clone, Debug)]
pub struct GraphFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The file's facts.
    pub facts: FileFacts,
}

/// The assembled cross-file view of the workspace.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every analyzed file, in sorted path order.
    pub files: Vec<GraphFile>,
    /// Names of workspace functions whose return type mentions `Result`.
    pub result_fns: BTreeSet<String>,
    /// For non-test workspace files: path → deduplicated reference set.
    refs_by_file: BTreeMap<String, BTreeSet<RefFact>>,
}

impl Graph {
    /// Assembles the graph from per-file facts (must be pre-sorted by
    /// path for deterministic rule output).
    pub fn build(files: Vec<GraphFile>) -> Graph {
        let mut result_fns = BTreeSet::new();
        let mut refs_by_file = BTreeMap::new();
        for f in &files {
            for func in &f.facts.fns {
                if func.returns_result {
                    result_fns.insert(func.name.clone());
                }
            }
            refs_by_file
                .insert(f.path.clone(), f.facts.refs.iter().cloned().collect::<BTreeSet<_>>());
        }
        Graph { files, result_fns, refs_by_file }
    }

    /// The facts of `path`, if analyzed.
    pub fn file(&self, path: &str) -> Option<&GraphFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Whether `path` references `two_segment_path` (e.g. `Frame::Hello`)
    /// inside function `context_fn` — or anywhere in the file when
    /// `context_fn` is `None`.
    pub fn references(&self, path: &str, two_segment_path: &str, context_fn: Option<&str>) -> bool {
        let Some(refs) = self.refs_by_file.get(path) else { return false };
        refs.iter().any(|r| {
            r.path == two_segment_path && context_fn.is_none_or(|f| r.context_fn == f)
        })
    }

    /// Whether any file whose path starts with `prefix` references
    /// `two_segment_path`.
    pub fn referenced_under(&self, prefix: &str, two_segment_path: &str, exclude: &str) -> bool {
        self.refs_by_file.iter().any(|(p, refs)| {
            p.starts_with(prefix)
                && p != exclude
                && refs.iter().any(|r| r.path == two_segment_path)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(path: &str, src: &str) -> FileFacts {
        extract(&SourceFile::from_source(path, src.to_owned()))
    }

    #[test]
    fn fn_and_enum_facts_are_extracted() {
        let f = facts(
            "crates/x/src/lib.rs",
            "pub fn fallible() -> Result<(), String> { Ok(()) }\n\
             fn infallible() -> u32 { 0 }\n\
             pub enum Wire { Ping, Pong }\n",
        );
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].returns_result);
        assert!(!f.fns[1].returns_result);
        // `Result` must be a standalone identifier, not a substring.
        assert!(mentions_result("io::Result<()>"));
        assert!(mentions_result("Result < u32 , E >"));
        assert!(!mentions_result("ReplayResult"));
        assert!(!mentions_result("Vec<ResultRow>"));
        assert!(mentions_result("Vec<Result<u32, E>>"));
        assert_eq!(f.enums.len(), 1);
        assert_eq!(f.enums[0].variants.len(), 2);
        assert_eq!(f.enums[0].variants[1].name, "Pong");
        assert_eq!(f.enums[0].variants[1].site.line, 3);
    }

    #[test]
    fn refs_carry_their_enclosing_fn() {
        let f = facts(
            "crates/x/src/lib.rs",
            "fn encode() { let _x = Wire::Ping; }\nfn decode() { match w { Wire::Pong => {} _ => {} } }\n",
        );
        assert!(f.refs.contains(&RefFact { context_fn: "encode".into(), path: "Wire::Ping".into() }));
        assert!(f.refs.contains(&RefFact { context_fn: "decode".into(), path: "Wire::Pong".into() }));
    }

    #[test]
    fn lowercase_paths_and_test_code_are_not_refs() {
        let f = facts(
            "crates/x/src/lib.rs",
            "fn f() { std::mem::drop(()); }\n#[cfg(test)]\nmod tests { fn t() { let _x = Wire::Ping; } }\n",
        );
        assert!(f.refs.is_empty(), "{:?}", f.refs);
    }

    #[test]
    fn discards_record_top_level_callees() {
        let f = facts(
            "crates/x/src/lib.rs",
            "fn f() { let _ = frame.write_to(&mut w); let _ = writeln!(out, \"x\"); let _ = inner(helper()); }\n",
        );
        assert_eq!(f.discards.len(), 3, "{:?}", f.discards);
        assert_eq!(f.discards[0].callees, vec!["write_to"]);
        assert_eq!(f.discards[1].callees, vec!["writeln!"]);
        assert_eq!(f.discards[2].callees, vec!["inner"], "nested calls are not top-level");
    }

    #[test]
    fn refs_inside_discarded_expressions_are_still_refs() {
        let f = facts(
            "crates/x/src/lib.rs",
            "fn f() { let _ = Frame::ErrorReply { code: ErrorCode::BadVersion }.write_to(w); }\n",
        );
        assert_eq!(f.discards.len(), 1);
        assert!(f.refs.iter().any(|r| r.path == "ErrorCode::BadVersion"), "{:?}", f.refs);
        assert!(f.refs.iter().any(|r| r.path == "Frame::ErrorReply"), "{:?}", f.refs);
    }

    #[test]
    fn ok_drops_flag_expression_statements_only() {
        let f = facts(
            "crates/x/src/lib.rs",
            "fn f() { sock.shutdown().ok(); let kept = parse().ok(); let _ = send().ok(); }\n",
        );
        assert_eq!(f.ok_drops.len(), 1, "{:?}", f.ok_drops);
        assert_eq!(f.discards.len(), 1);
        assert!(f.discards[0].ends_in_ok);
    }

    #[test]
    fn policy_names_and_registry_iteration() {
        let f = facts(
            "crates/core/src/registry.rs",
            "fn standard() { r.register(PolicyEntry { name: \"tdbp\", label: \"TDBP\" }); \
             for e in registry.entries() {} }\n",
        );
        assert_eq!(f.policy_names.len(), 1);
        assert_eq!(f.policy_names[0].name, "tdbp");
        assert!(f.iterates_registry);
    }

    #[test]
    fn escapes_and_string_literals_are_collected() {
        let f = facts(
            "crates/x/src/lib.rs",
            "// sdbp-allow(no-panic-paths): length checked above\n\
             fn f() { let s = \"tdbp\"; } // sdbp-allow(reasonless)\n",
        );
        assert_eq!(f.escapes.len(), 1, "{:?}", f.escapes);
        assert_eq!(f.escapes[0].line, 1);
        assert_eq!(f.escapes[0].rule, "no-panic-paths");
        assert_eq!(f.escapes[0].reason, "length checked above");
        assert!(f.str_lits.contains(&"tdbp".to_owned()));
    }

    #[test]
    fn graph_joins_result_fns_and_refs() {
        let a = GraphFile {
            path: "crates/a/src/lib.rs".into(),
            facts: facts(
                "crates/a/src/lib.rs",
                "pub fn write_to() -> Result<(), E> { Ok(()) }\n",
            ),
        };
        let b = GraphFile {
            path: "crates/b/src/lib.rs".into(),
            facts: facts("crates/b/src/lib.rs", "fn handle() { let _x = Wire::Ping; }\n"),
        };
        let g = Graph::build(vec![a, b]);
        assert!(g.result_fns.contains("write_to"));
        assert!(g.references("crates/b/src/lib.rs", "Wire::Ping", Some("handle")));
        assert!(!g.references("crates/b/src/lib.rs", "Wire::Ping", Some("other")));
        assert!(g.referenced_under("crates/b/", "Wire::Ping", "crates/a/src/lib.rs"));
        assert!(!g.referenced_under("crates/b/", "Wire::Pong", ""));
    }
}
