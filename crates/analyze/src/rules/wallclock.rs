//! `no-wallclock-in-sim`: simulation results must be a pure function of
//! the trace and the configuration.
//!
//! `Instant`/`SystemTime` anywhere in simulation library code is a red
//! flag: a policy, predictor, or generator that consults wall-clock time
//! produces run-to-run variation that no seed pins down — exactly what
//! the single-pass SDBP evaluation (PAPER.md §4) must exclude. Timing
//! *telemetry* is legitimate, but only in the measurement layers (the
//! engine's instrumentation, the CLI's progress reporting, the bench
//! crate), all of which are enumerated in the committed `analyze.toml`
//! with their justifications.
//!
//! Scope: every non-test library file; binaries (`src/bin/**`) are
//! exempt, since progress timing on stderr is CLI behavior, not
//! simulation state.

use super::{finding_at, Finding, Rule};
use crate::lexer::TokenKind;
use crate::source::{FileClass, SourceFile};

/// See the [module docs](self).
#[derive(Debug)]
pub struct NoWallclockInSim;

impl Rule for NoWallclockInSim {
    fn id(&self) -> &'static str {
        "no-wallclock-in-sim"
    }

    fn summary(&self) -> &'static str {
        "Instant/SystemTime in simulation code (telemetry layers are allowlisted)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class != FileClass::Library {
            return;
        }
        for t in &file.lexed.tokens {
            if t.kind != TokenKind::Ident || file.in_test(t.start) {
                continue;
            }
            let text = file.text(t);
            if matches!(text, "Instant" | "SystemTime") {
                out.push(finding_at(
                    self.id(),
                    file,
                    t.start,
                    format!(
                        "`{text}` in simulation library code; results must be a pure \
                         function of trace + config (telemetry layers belong in \
                         analyze.toml with a reason)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        NoWallclockInSim.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_wallclock_in_library_code() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(run("crates/cache/src/replay.rs", src).len(), 2);
        let src2 = "fn f() { let t = std::time::SystemTime::now(); }";
        assert_eq!(run("crates/trace/src/synthetic.rs", src2).len(), 1);
    }

    #[test]
    fn binaries_and_tests_are_exempt() {
        let src = "use std::time::Instant;";
        assert!(run("crates/harness/src/bin/sdbp_repro.rs", src).is_empty());
        assert!(run("crates/cache/tests/properties.rs", src).is_empty());
    }

    #[test]
    fn duration_is_fine() {
        assert!(run("crates/cpu/src/lib.rs", "use std::time::Duration;").is_empty());
    }
}
