//! `deterministic-iteration`: report and aggregation paths must never
//! iterate a hashed container.
//!
//! The engine's submission-order-deterministic aggregation (PR 1) and the
//! byte-identical replay guarantee (PR 2) both die silently the moment a
//! `HashMap` iteration order leaks into an output path: the same run
//! starts producing differently-ordered JSON rows, and byte-level diffs
//! (the CI record/replay gate) go red nondeterministically. This is the
//! variability failure mode reuse-prediction replications warn about
//! (PAPERS.md, "Addressing Variability in Reuse Prediction").
//!
//! Applies to all non-test library code, workspace-wide — every crate
//! feeds a result, a report, or a persisted artifact sooner or later.
//! `HashMap`/`HashSet` are banned outright (lookup-only uses would be
//! fine in principle, but an ordered `BTreeMap` costs nothing at report
//! scale and cannot regress into iteration later). Opt-outs go through
//! `[[exempt]]` entries in `analyze.toml` with a written reason.

use super::{finding_at, Finding, Rule};
use crate::lexer::TokenKind;
use crate::source::{FileClass, SourceFile};

/// See the [module docs](self).
#[derive(Debug)]
pub struct DeterministicIteration;

impl Rule for DeterministicIteration {
    fn id(&self) -> &'static str {
        "deterministic-iteration"
    }

    fn summary(&self) -> &'static str {
        "HashMap/HashSet in aggregation or report paths (use BTreeMap or sort)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class != FileClass::Library {
            return;
        }
        for t in &file.lexed.tokens {
            if t.kind != TokenKind::Ident || file.in_test(t.start) {
                continue;
            }
            let text = file.text(t);
            if matches!(text, "HashMap" | "HashSet") {
                out.push(finding_at(
                    self.id(),
                    file,
                    t.start,
                    format!(
                        "`{text}` in a report/aggregation path; iteration order is \
                         nondeterministic — use `BTreeMap`/`BTreeSet` or sort keys \
                         explicitly"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        DeterministicIteration.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_hashed_containers_in_report_paths() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let found = run("crates/engine/src/report.rs", src);
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn btree_is_fine_and_hashed_containers_are_flagged_everywhere() {
        assert!(run("crates/engine/src/report.rs", "use std::collections::BTreeMap;").is_empty());
        assert_eq!(run("crates/trace/src/stats.rs", "use std::collections::HashSet;").len(), 1);
    }

    #[test]
    fn test_modules_may_use_hashed_containers() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashSet; }";
        assert!(run("crates/engine/src/lib.rs", src).is_empty());
    }

    #[test]
    fn serve_result_paths_are_in_scope() {
        let src = "fn f() { let m = std::collections::HashMap::new(); }";
        assert_eq!(run("crates/serve/src/server.rs", src).len(), 1);
    }

    #[test]
    fn sample_plan_paths_are_in_scope() {
        let src = "fn f() { let m = std::collections::HashMap::new(); }";
        assert_eq!(run("crates/sample/src/kmeans.rs", src).len(), 1);
    }
}
