//! `mutex-discipline`: no lock guard held across a blocking channel or
//! socket call.
//!
//! The serve daemon (PR 6) and the engine pool (PR 1) both mix shared
//! state behind `Mutex`es with blocking rendezvous points — channel
//! `recv`, socket `accept`/`connect`, buffered `write_all`/`flush`. A
//! guard that stays live across such a call serializes every other
//! thread on I/O latency at best and deadlocks at worst (the classic
//! shape: worker A blocks on `recv` holding the queue lock, worker B
//! needs the lock to `send`). The compiler cannot see this; the
//! statement spans in the file's AST can.
//!
//! The rule tracks `let`-bound guards (`let g = m.lock()...;`,
//! `if/while let Ok(g) = m.lock()`) from their binding statement to the
//! end of the enclosing block, an explicit `drop(g)`, or a
//! re-assignment, and flags any blocking call inside that span. Two
//! deliberate exclusions keep the false-positive rate at zero:
//! un-bound guards (`m.lock().unwrap().push(x);` dies at the `;`) and
//! `Condvar::wait`, which *consumes* the guard — holding the lock is
//! the point of a condvar.

use super::{finding_at, Finding, Rule};
use crate::lexer::TokenKind;
use crate::source::{FileClass, SourceFile};

/// Calls that block on a channel, socket, or timer while in flight.
const BLOCKING: &[&str] = &[
    "recv",
    "recv_timeout",
    "send",
    "accept",
    "connect",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "sleep",
];

/// See the [module docs](self).
#[derive(Debug)]
pub struct MutexDiscipline;

impl Rule for MutexDiscipline {
    fn id(&self) -> &'static str {
        "mutex-discipline"
    }

    fn summary(&self) -> &'static str {
        "lock guard held across a blocking channel/socket call (shrink the critical section)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class == FileClass::Test {
            return;
        }
        let toks = &file.lexed.tokens;
        let text = |i: usize| toks.get(i).map_or("", |t| file.text(t));
        let is_punct = |i: usize, c: &str| {
            toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && text(i) == c
        };
        let mut i = 0usize;
        while i < toks.len() {
            // A `.lock()` call outside test code…
            if !(is_punct(i, ".")
                && text(i + 1) == "lock"
                && is_punct(i + 2, "(")
                && is_punct(i + 3, ")")
                && !file.in_test(toks[i].start))
            {
                i += 1;
                continue;
            }
            // …whose chain stops at the guard: `.lock()`, optionally
            // followed by `.unwrap()` / `.expect(…)`. A longer chain
            // (`.lock().unwrap().pop_front()`) binds a value extracted
            // *through* a temporary guard that dies at the `;`.
            let mut after = i + 4;
            loop {
                if is_punct(after, ".") && text(after + 1) == "unwrap" && is_punct(after + 2, "(")
                {
                    after += 4;
                } else if is_punct(after, ".")
                    && text(after + 1) == "expect"
                    && is_punct(after + 2, "(")
                {
                    let mut depth = 1usize;
                    let mut k = after + 3;
                    while k < toks.len() && depth > 0 {
                        if is_punct(k, "(") {
                            depth += 1;
                        } else if is_punct(k, ")") {
                            depth -= 1;
                        }
                        k += 1;
                    }
                    after = k;
                } else {
                    break;
                }
            }
            if is_punct(after, ".") {
                i = after;
                continue;
            }
            // …and whose statement binds that guard to a name.
            let Some(guard) = binding_of(file, i) else {
                i += 4;
                continue;
            };
            // Find the end of the binding statement: the `;` (plain
            // `let`) or the `{` opening an `if/while let` body.
            let mut j = i + 4;
            while j < toks.len() && !is_punct(j, ";") && !is_punct(j, "{") {
                j += 1;
            }
            let body_scan = is_punct(j, "{");
            // Scan the guard's live range: to the end of the enclosing
            // block (or of the `if/while let` body), an explicit
            // `drop(guard)`, or a shadowing rebind.
            let mut depth: i32 = i32::from(body_scan);
            j += 1;
            while j < toks.len() {
                if is_punct(j, "{") {
                    depth += 1;
                } else if is_punct(j, "}") {
                    depth -= 1;
                    if depth < 0 || (body_scan && depth == 0) {
                        break;
                    }
                } else if (text(j) == "drop" && is_punct(j + 1, "(") && text(j + 2) == guard)
                    || (text(j) == "let" && text(j + 1) == guard.as_str())
                {
                    // Explicit drop or a shadowing rebind ends the span.
                    break;
                } else if toks[j].kind == TokenKind::Ident
                    && BLOCKING.contains(&text(j))
                    && is_punct(j + 1, "(")
                {
                    let (lock_line, _) = file.line_col(toks[i].start);
                    out.push(finding_at(
                        self.id(),
                        file,
                        toks[j].start,
                        format!(
                            "blocking call `{}` while lock guard `{guard}` (taken on line \
                             {lock_line}) is still live — drop the guard or move the call \
                             out of the critical section",
                            text(j)
                        ),
                    ));
                }
                j += 1;
            }
            i += 4;
        }
    }
}

/// If the statement containing the `.lock()` at token index `dot` binds
/// a named guard, returns the guard name.
///
/// Recognized shapes (with optional leading `if`/`while` and `mut`):
/// `let g = …`, `let Ok(g) = …`, `let Some(g) = …`. A discard binding
/// (`let _ = …`) or an un-bound expression statement returns `None`.
fn binding_of(file: &SourceFile, dot: usize) -> Option<String> {
    let toks = &file.lexed.tokens;
    let text = |i: usize| toks.get(i).map_or("", |t| file.text(t));
    let is_punct = |i: usize, c: &str| {
        toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && text(i) == c
    };
    // Scan back to the statement start.
    let mut s = dot;
    while s > 0 {
        let prev = s - 1;
        if toks[prev].kind == TokenKind::Punct && matches!(text(prev), ";" | "{" | "}") {
            break;
        }
        s = prev;
    }
    if matches!(text(s), "if" | "while") {
        s += 1;
    }
    if text(s) != "let" {
        return None;
    }
    s += 1;
    if matches!(text(s), "Ok" | "Some") && is_punct(s + 1, "(") {
        s += 2;
    }
    if text(s) == "mut" {
        s += 1;
    }
    let tok = toks.get(s)?;
    if tok.kind != TokenKind::Ident || text(s) == "_" {
        return None;
    }
    Some(text(s).to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/serve/src/server.rs", src.to_owned());
        let mut out = Vec::new();
        MutexDiscipline.check(&f, &mut out);
        out
    }

    #[test]
    fn guard_held_across_recv_is_flagged_with_accurate_span() {
        let src = "fn f() {\n    let g = q.lock().expect(\"poisoned\");\n    let job = rx.recv();\n    g.push(job);\n}\n";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!((found[0].line, found[0].col), (3, 18));
        assert!(found[0].message.contains("`g`"), "{}", found[0].message);
        assert!(found[0].message.contains("line 2"), "{}", found[0].message);
    }

    #[test]
    fn dropping_the_guard_first_is_clean() {
        let src = "fn f() {\n    let g = q.lock().expect(\"poisoned\");\n    let j = g.pop();\n    drop(g);\n    let job = rx.recv();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unbound_guard_dies_at_the_statement() {
        let src = "fn f() { q.lock().expect(\"poisoned\").push(x); let job = rx.recv(); }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn chained_extraction_binds_the_value_not_the_guard() {
        // The engine pool's idiom: the guard is a temporary, `next` is
        // the popped value, and the later `send` is lock-free.
        let src = "fn f() {\n    let next = q.lock().expect(\"poisoned\").pop_front();\n    tx.send(next);\n}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn inner_block_scopes_the_guard() {
        let src = "fn f() {\n    { let g = q.lock().expect(\"p\"); g.push(x); }\n    let job = rx.recv();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn if_let_guard_is_tracked_within_its_body_only() {
        let src = "fn f() {\n    if let Ok(g) = q.lock() {\n        sock.write_all(&g.bytes());\n    }\n    let job = rx.recv();\n}\n";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let g = q.lock().expect(\"p\"); rx.recv(); }\n}\n";
        assert!(run(src).is_empty());
    }
}
