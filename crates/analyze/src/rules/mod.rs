//! The rule engine: each rule is a pattern over the token stream of one
//! [`SourceFile`], reporting span-accurate [`Finding`]s.
//!
//! Rules are deliberately *lexical*: the workspace is std-only and
//! offline, so there is no type information to lean on. Each rule is
//! therefore scoped to the paths where its invariant actually matters
//! (see each rule's module docs), which keeps the false-positive rate
//! near zero — and anything residual is handled by the two escape
//! hatches ([`crate::config`] allowlist entries and `// sdbp-allow(rule)`
//! line escapes).

mod casts;
mod det_iter;
mod docs;
mod flat_metadata;
mod panic_paths;
mod seed;
mod wallclock;

use crate::source::SourceFile;

pub use casts::LosslessCodecCasts;
pub use det_iter::DeterministicIteration;
pub use docs::PubApiDocs;
pub use flat_metadata::FlatMetadata;
pub use panic_paths::NoPanicPaths;
pub use seed::SeedDiscipline;
pub use wallclock::NoWallclockInSim;

/// One diagnostic: where, which rule, and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Stable rule identifier (e.g. `no-panic-paths`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The full offending source line, trimmed, for context.
    pub snippet: String,
}

/// A single invariant check over one file.
pub trait Rule {
    /// Stable identifier used in reports, the allowlist, and
    /// `sdbp-allow(...)` escapes.
    fn id(&self) -> &'static str;

    /// One-line description of the invariant the rule protects.
    fn summary(&self) -> &'static str;

    /// Scans `file`, appending findings to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// Every rule, in stable report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicPaths),
        Box::new(DeterministicIteration),
        Box::new(NoWallclockInSim),
        Box::new(LosslessCodecCasts),
        Box::new(SeedDiscipline),
        Box::new(PubApiDocs),
        Box::new(FlatMetadata),
    ]
}

/// The stable id list (for config validation and `--list-rules`).
pub fn rule_ids() -> Vec<&'static str> {
    all_rules().iter().map(|r| r.id()).collect()
}

/// Whether `path` falls under any of `prefixes` (exact file or directory
/// prefix).
pub(crate) fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path == *p || path.starts_with(p))
}

/// Builds a [`Finding`] anchored at byte offset `byte` of `file`.
pub(crate) fn finding_at(
    rule: &'static str,
    file: &SourceFile,
    byte: usize,
    message: String,
) -> Finding {
    let (line, col) = file.line_col(byte);
    Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        col,
        message,
        snippet: file.line_text(line).trim().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_kebab_case() {
        let ids = rule_ids();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate rule id");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {id} is not kebab-case"
            );
        }
    }

    #[test]
    fn scope_matches_files_and_directories() {
        assert!(in_scope("crates/traceio/src/reader.rs", &["crates/traceio/src/"]));
        assert!(in_scope("crates/cache/src/recorder.rs", &["crates/cache/src/recorder.rs"]));
        assert!(!in_scope("crates/cache/src/replay.rs", &["crates/cache/src/recorder.rs"]));
    }
}
