//! The rule engine: each rule is a pattern over the token stream of one
//! [`SourceFile`], reporting span-accurate [`Finding`]s.
//!
//! Rules are deliberately *lexical*: the workspace is std-only and
//! offline, so there is no type information to lean on. Each rule is
//! therefore scoped to the paths where its invariant actually matters
//! (see each rule's module docs), which keeps the false-positive rate
//! near zero — and anything residual is handled by the two escape
//! hatches ([`crate::config`] allowlist entries and `// sdbp-allow(rule)`
//! line escapes).

mod casts;
mod det_iter;
mod docs;
mod flat_metadata;
mod mutex_discipline;
mod panic_paths;
mod registry_coverage;
mod result_discipline;
mod seed;
mod shard_determinism;
mod wallclock;
mod wire_exhaustive;

use std::path::Path;

use crate::graph::{Graph, Site};
use crate::source::SourceFile;

pub use casts::LosslessCodecCasts;
pub use det_iter::DeterministicIteration;
pub use docs::PubApiDocs;
pub use flat_metadata::FlatMetadata;
pub use mutex_discipline::MutexDiscipline;
pub use panic_paths::NoPanicPaths;
pub use registry_coverage::RegistryCoverage;
pub use result_discipline::ResultDiscipline;
pub use seed::SeedDiscipline;
pub use shard_determinism::ShardDeterminism;
pub use wallclock::NoWallclockInSim;
pub use wire_exhaustive::WireExhaustive;

/// One diagnostic: where, which rule, and why.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Stable rule identifier (e.g. `no-panic-paths`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The full offending source line, trimmed, for context.
    pub snippet: String,
}

/// A single invariant check over one file.
pub trait Rule {
    /// Stable identifier used in reports, the allowlist, and
    /// `sdbp-allow(...)` escapes.
    fn id(&self) -> &'static str;

    /// One-line description of the invariant the rule protects.
    fn summary(&self) -> &'static str;

    /// Scans `file`, appending findings to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// A cross-file invariant check over the assembled workspace [`Graph`].
///
/// Graph rules run after every file's facts are extracted (phase 2 of
/// the scan), so they can relate declarations in one file to uses in
/// another — e.g. a wire variant with an encode arm but no decode arm.
pub trait GraphRule {
    /// Stable identifier used in reports, the allowlist, and
    /// `sdbp-allow(...)` escapes.
    fn id(&self) -> &'static str;

    /// One-line description of the invariant the rule protects.
    fn summary(&self) -> &'static str;

    /// Scans `graph`, appending findings to `out`.
    fn check(&self, graph: &Graph, ctx: &GraphContext, out: &mut Vec<Finding>);
}

/// Ambient workspace information graph rules may consult beyond the
/// Rust sources (e.g. the golden replay fixture).
#[derive(Debug)]
pub struct GraphContext<'a> {
    /// Workspace root directory.
    pub root: &'a Path,
}

/// Rule metadata shared by per-file and graph rules, for reports,
/// SARIF, and `--list-rules`.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule identifier.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// Every per-file rule, in stable report order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicPaths),
        Box::new(DeterministicIteration),
        Box::new(NoWallclockInSim),
        Box::new(LosslessCodecCasts),
        Box::new(SeedDiscipline),
        Box::new(PubApiDocs),
        Box::new(FlatMetadata),
        Box::new(MutexDiscipline),
        Box::new(ShardDeterminism),
    ]
}

/// Every graph rule, in stable report order.
pub fn graph_rules() -> Vec<Box<dyn GraphRule>> {
    vec![Box::new(ResultDiscipline), Box::new(WireExhaustive), Box::new(RegistryCoverage)]
}

/// Metadata for every rule — per-file first, then graph — in stable
/// report order.
pub fn all_rule_info() -> Vec<RuleInfo> {
    all_rules()
        .iter()
        .map(|r| RuleInfo { id: r.id(), summary: r.summary() })
        .chain(graph_rules().iter().map(|r| RuleInfo { id: r.id(), summary: r.summary() }))
        .collect()
}

/// The stable id list over both rule kinds (for config validation and
/// `--list-rules`).
pub fn rule_ids() -> Vec<&'static str> {
    all_rule_info().iter().map(|r| r.id).collect()
}

/// Builds a [`Finding`] anchored at a precomputed fact [`Site`] (graph
/// rules work from facts and never hold the source text).
pub(crate) fn finding_at_site(
    rule: &'static str,
    path: &str,
    site: &Site,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: path.to_owned(),
        line: site.line,
        col: site.col,
        message,
        snippet: site.snippet.clone(),
    }
}

/// Builds a [`Finding`] anchored at byte offset `byte` of `file`.
pub(crate) fn finding_at(
    rule: &'static str,
    file: &SourceFile,
    byte: usize,
    message: String,
) -> Finding {
    let (line, col) = file.line_col(byte);
    Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        col,
        message,
        snippet: file.line_text(line).trim().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_kebab_case() {
        let ids = rule_ids();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate rule id");
        for id in ids {
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "rule id {id} is not kebab-case"
            );
        }
    }
}
