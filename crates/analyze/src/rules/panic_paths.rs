//! `no-panic-paths`: the streaming and aggregation layers must report
//! failures as typed errors, never panic.
//!
//! Applies to all non-test library code, workspace-wide: a corrupt
//! archive must surface as a `TraceIoError`, a panicking worker must be
//! isolated rather than joined by a panicking aggregator, a daemon that
//! panics on a malformed frame is a remote denial of service. Crates
//! whose invariants genuinely call for aborts (the hot simulation data
//! plane, where a violated geometry invariant means the simulator
//! itself is wrong) opt out via `[[exempt]]` entries in `analyze.toml`,
//! each with a written reason.
//!
//! Flags `.unwrap()`, `.expect(...)`, `panic!`, `todo!`, `unimplemented!`,
//! and `[]`-indexing expressions (which can panic on out-of-bounds; use
//! `.get()`, pattern matching, or fixed-size reads instead).

use super::{finding_at, Finding, Rule};
use crate::source::{FileClass, SourceFile};
use crate::lexer::TokenKind;

/// See the [module docs](self).
#[derive(Debug)]
pub struct NoPanicPaths;

impl Rule for NoPanicPaths {
    fn id(&self) -> &'static str {
        "no-panic-paths"
    }

    fn summary(&self) -> &'static str {
        "unwrap/expect/panic!/todo!/[]-indexing in error-propagating library code"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class != FileClass::Library {
            return;
        }
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if file.in_test(t.start) {
                continue;
            }
            let text = file.text(t);
            let prev = i.checked_sub(1).and_then(|p| toks.get(p));
            let next = toks.get(i + 1);
            let prev_text = prev.map_or("", |p| file.text(p));
            let next_text = next.map_or("", |n| file.text(n));
            match t.kind {
                TokenKind::Ident
                    if matches!(text, "unwrap" | "expect")
                        && prev_text == "."
                        && next_text == "(" =>
                {
                    out.push(finding_at(
                        self.id(),
                        file,
                        t.start,
                        format!(
                            "`.{text}()` in error-propagating library code; \
                             return a typed error instead"
                        ),
                    ));
                }
                TokenKind::Ident
                    if matches!(text, "panic" | "todo" | "unimplemented")
                        && next_text == "!"
                        && prev_text != "." =>
                {
                    out.push(finding_at(
                        self.id(),
                        file,
                        t.start,
                        format!("`{text}!` in error-propagating library code"),
                    ));
                }
                TokenKind::Punct if text == "[" => {
                    // An index expression: `expr[...]` — the `[` directly
                    // follows an identifier, `)`, or `]`. Array literals,
                    // types, and attributes follow other tokens (`=`, `:`,
                    // `(`, `#`, `!`, ...).
                    let indexes = match prev {
                        Some(p) => {
                            p.kind == TokenKind::Ident && !is_keyword(prev_text)
                                || (p.kind == TokenKind::Punct
                                    && matches!(prev_text, ")" | "]"))
                        }
                        None => false,
                    };
                    if indexes {
                        out.push(finding_at(
                            self.id(),
                            file,
                            t.start,
                            "`[]` indexing can panic; use `.get()`, pattern matching, \
                             or fixed-size reads"
                                .to_owned(),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [..]`, `break [..]`, `in [..]`, ...).
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "return" | "break" | "in" | "if" | "else" | "match" | "mut" | "ref" | "move" | "as"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        NoPanicPaths.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_panics_in_scope() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); todo!(); }";
        let found = run("crates/traceio/src/reader.rs", src);
        assert_eq!(found.len(), 4, "{found:?}");
    }

    #[test]
    fn flags_index_expressions_but_not_literals_or_types() {
        let src = "fn f(v: &[u8]) -> [u8; 4] { let a = [0u8; 4]; let x = v[0]; a }";
        let found = run("crates/engine/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("indexing"));
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }";
        assert!(run("crates/traceio/src/reader.rs", src).is_empty());
    }

    #[test]
    fn all_library_code_is_in_scope_but_test_code_is_not() {
        let src = "fn f() { a.unwrap(); }";
        assert_eq!(run("crates/harness/src/runner.rs", src).len(), 1, "workspace-wide default");
        let test_src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }";
        assert!(run("crates/traceio/src/reader.rs", test_src).is_empty());
    }

    #[test]
    fn replay_is_in_scope() {
        let src = "fn f() { a.unwrap(); }";
        assert_eq!(run("crates/cache/src/replay.rs", src).len(), 1);
    }

    #[test]
    fn vec_macro_and_attributes_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() { let v = vec![1, 2]; }";
        assert!(run("crates/engine/src/lib.rs", src).is_empty());
    }

    #[test]
    fn serve_wire_code_is_in_scope() {
        let src = "fn f(buf: &[u8]) -> u8 { buf[0] }";
        assert_eq!(run("crates/serve/src/protocol.rs", src).len(), 1);
        assert_eq!(run("crates/serve/src/session.rs", "fn f() { a.unwrap(); }").len(), 1);
    }

    #[test]
    fn sample_plan_code_is_in_scope() {
        let src = "fn f(buf: &[u8]) -> u8 { buf[0] }";
        assert_eq!(run("crates/sample/src/plan.rs", src).len(), 1);
        assert_eq!(run("crates/sample/src/kmeans.rs", "fn f() { a.unwrap(); }").len(), 1);
    }
}
