//! `registry-coverage`: every registered policy is gated by the golden
//! fixture and the sampling smoke harness.
//!
//! The repository's headline claim is per-policy: each of the specs
//! registered in `Registry::base()` / `sdbp::registry::standard()` has
//! a golden miss count (`tests/golden/replay_miss_counts.tsv`, replayed
//! bit-identically by `tests/golden_replay.rs`) and a sampled-replay
//! error bound (`sample_smoke`). Registering a policy without wiring it
//! into those gates silently shrinks the claim: PR 4 added `aip` and
//! `sampler-srrip`, and only a hand-audit confirmed both gates grew
//! with the registry. This rule makes that audit structural.
//!
//! Phase 1 records every `name: "…"` registration in the two
//! `registry.rs` files and every string literal in `sample_smoke`;
//! phase 2 checks each registered name against (a) the specs column of
//! the golden TSV — a spec matches as the exact name or as
//! `name:params` — and (b) `sample_smoke`'s policy list, satisfied
//! structurally when the smoke binary iterates `registry.entries()`
//! (full coverage by construction). Findings anchor at the
//! registration site, so the fix is one hop from the diagnostic.

use super::{finding_at_site, Finding, GraphContext, GraphRule};
use crate::graph::Graph;

/// The golden fixture, relative to the workspace root. When absent
/// (synthetic test workspaces), the golden leg is skipped — the fixture
/// itself is guaranteed by tier-1, not by this rule.
const GOLDEN_TSV: &str = "tests/golden/replay_miss_counts.tsv";

/// The sampling smoke gate.
const SMOKE: &str = "crates/harness/src/bin/sample_smoke.rs";

/// See the [module docs](self).
#[derive(Debug)]
pub struct RegistryCoverage;

impl GraphRule for RegistryCoverage {
    fn id(&self) -> &'static str {
        "registry-coverage"
    }

    fn summary(&self) -> &'static str {
        "registered policy missing from the golden fixture or sample_smoke gate"
    }

    fn check(&self, graph: &Graph, ctx: &GraphContext, out: &mut Vec<Finding>) {
        let golden_specs: Option<Vec<String>> =
            std::fs::read_to_string(ctx.root.join(GOLDEN_TSV)).ok().map(|text| {
                text.lines()
                    .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
                    .filter_map(|l| l.split('\t').nth(4).map(str::to_owned))
                    .collect()
            });
        let smoke = graph.file(SMOKE);
        for file in &graph.files {
            if !file.path.ends_with("/registry.rs") || !file.path.starts_with("crates/") {
                continue;
            }
            for p in &file.facts.policy_names {
                if let Some(specs) = &golden_specs {
                    let covered = specs
                        .iter()
                        .any(|s| s == &p.name || s.starts_with(&format!("{}:", p.name)));
                    if !covered {
                        out.push(finding_at_site(
                            self.id(),
                            &file.path,
                            &p.site,
                            format!(
                                "policy `{}` is registered but has no row in {GOLDEN_TSV} — \
                                 regenerate the fixture (examples/golden_gen.rs) so the \
                                 golden gate covers it",
                                p.name
                            ),
                        ));
                    }
                }
                if let Some(smoke) = smoke {
                    let covered = smoke.facts.iterates_registry
                        || smoke.facts.str_lits.contains(&p.name);
                    if !covered {
                        out.push(finding_at_site(
                            self.id(),
                            &file.path,
                            &p.site,
                            format!(
                                "policy `{}` is registered but absent from sample_smoke's \
                                 policy list — the sampled-replay error bound does not \
                                 cover it",
                                p.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{extract, GraphFile};
    use crate::source::SourceFile;
    use std::path::Path;

    fn scan(root: &Path, files: &[(&str, &str)]) -> Vec<Finding> {
        let graph = Graph::build(
            files
                .iter()
                .map(|(p, s)| GraphFile {
                    path: (*p).to_owned(),
                    facts: extract(&SourceFile::from_source(p, (*s).to_owned())),
                })
                .collect(),
        );
        let mut out = Vec::new();
        RegistryCoverage.check(&graph, &GraphContext { root }, &mut out);
        out
    }

    fn with_golden(specs: &[&str], files: &[(&str, &str)]) -> Vec<Finding> {
        let tmp = std::env::temp_dir()
            .join(format!("sdbp-analyze-regcov-{}-{:p}", std::process::id(), &specs));
        std::fs::create_dir_all(tmp.join("tests/golden")).expect("mkdir");
        let mut tsv = String::from("# header\n");
        for s in specs {
            tsv.push_str(&format!("wl\t1000\t256\t16\t{s}\t42\n"));
        }
        std::fs::write(tmp.join(GOLDEN_TSV), tsv).expect("write tsv");
        let found = scan(&tmp, files);
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        found
    }

    const REGISTRY: &str = "pub fn standard() -> Registry {\n    let mut r = Registry::base();\n    r.register(PolicyEntry { name: \"tdbp\", label: \"TDBP\" });\n    r\n}\n";
    const SMOKE_ITER: &str = "fn main() { for e in registry.entries() { run(e); } }\n";

    #[test]
    fn entries_iteration_plus_golden_row_is_clean() {
        let found = with_golden(
            &["tdbp"],
            &[("crates/core/src/registry.rs", REGISTRY), (SMOKE, SMOKE_ITER)],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn parameterized_golden_specs_cover_the_base_name() {
        let found = with_golden(
            &["tdbp:tables=1"],
            &[("crates/core/src/registry.rs", REGISTRY), (SMOKE, SMOKE_ITER)],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn missing_golden_row_is_one_finding_at_the_registration() {
        let found = with_golden(
            &["lru"],
            &[("crates/core/src/registry.rs", REGISTRY), (SMOKE, SMOKE_ITER)],
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("no row in"), "{}", found[0].message);
        assert_eq!(found[0].line, 3, "anchored at the `name:` literal");
        assert!(found[0].snippet.contains("tdbp"), "{}", found[0].snippet);
    }

    #[test]
    fn smoke_with_explicit_list_must_name_every_policy() {
        let smoke_explicit = "fn main() { for p in [\"lru\"] { run(p); } }\n";
        let found = with_golden(
            &["tdbp"],
            &[("crates/core/src/registry.rs", REGISTRY), (SMOKE, smoke_explicit)],
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("sample_smoke"), "{}", found[0].message);
    }

    #[test]
    fn absent_fixture_and_smoke_skip_their_legs() {
        let tmp = std::env::temp_dir()
            .join(format!("sdbp-analyze-regcov-none-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).expect("mkdir");
        let found = scan(&tmp, &[("crates/core/src/registry.rs", REGISTRY)]);
        std::fs::remove_dir_all(&tmp).expect("cleanup");
        assert!(found.is_empty(), "{found:?}");
    }
}
