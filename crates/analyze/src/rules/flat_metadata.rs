//! `flat-metadata`: per-line cache metadata in the hot simulation crates
//! must be stored contiguously, not as nested vectors.
//!
//! The data-plane refactor moved every policy's per-(set, way) state onto
//! [`MetaPlane`] (`crates/cache/src/meta.rs`) — one flat allocation
//! indexed `set * width + lane` — and replay outcomes onto the packed
//! `HitMap` bitset. A `Vec<Vec<...>>` reintroduces a pointer chase per
//! set plus one heap allocation per row, exactly the layout the refactor
//! removed from the replay hot path.
//!
//! Applies to all non-test library code, workspace-wide. Cold layers
//! where nesting is the natural shape (report matrices, CLI batching)
//! opt out via `[[exempt]]` entries in `analyze.toml` with a written
//! reason.
//!
//! [`MetaPlane`]: ../../../cache/src/meta.rs

use super::{finding_at, Finding, Rule};
use crate::lexer::TokenKind;
use crate::source::{FileClass, SourceFile};

/// See the [module docs](self).
#[derive(Debug)]
pub struct FlatMetadata;

impl Rule for FlatMetadata {
    fn id(&self) -> &'static str {
        "flat-metadata"
    }

    fn summary(&self) -> &'static str {
        "nested Vec<Vec<..>> metadata in hot simulation crates (use MetaPlane)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class != FileClass::Library {
            return;
        }
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || file.text(t) != "Vec"
                || file.in_test(t.start)
            {
                continue;
            }
            let lt = toks.get(i + 1);
            let inner = toks.get(i + 2);
            let is_nested = lt.is_some_and(|l| file.text(l) == "<")
                && inner.is_some_and(|n| n.kind == TokenKind::Ident && file.text(n) == "Vec");
            if is_nested {
                out.push(finding_at(
                    self.id(),
                    file,
                    t.start,
                    "nested `Vec<Vec<..>>` per-line metadata; use `MetaPlane` \
                     (crates/cache/src/meta.rs) for one flat set×lane allocation"
                        .to_owned(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        FlatMetadata.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_nested_vectors_in_hot_crates() {
        let src = "struct P { lru: Vec<Vec<u8>> }";
        assert_eq!(run("crates/replacement/src/plru.rs", src).len(), 1);
        assert_eq!(run("crates/core/src/sampler.rs", src).len(), 1);
    }

    #[test]
    fn flat_vectors_and_meta_planes_are_fine() {
        let src = "struct P { dead: MetaPlane<bool>, clock: Vec<u32> }";
        assert!(run("crates/predictors/src/dbrb.rs", src).is_empty());
    }

    #[test]
    fn tests_and_binaries_are_exempt_but_library_code_is_not() {
        let src = "struct R { rows: Vec<Vec<String>> }";
        assert_eq!(run("crates/engine/src/report.rs", src).len(), 1, "workspace-wide default");
        assert!(run("crates/harness/src/bin/sdbp_repro.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { struct T { v: Vec<Vec<u8>> } }";
        assert!(run("crates/cache/src/meta.rs", test_src).is_empty());
    }

    #[test]
    fn serve_trace_buffers_are_in_scope() {
        let src = "struct Q { chunks: Vec<Vec<u8>> }";
        assert_eq!(run("crates/serve/src/session.rs", src).len(), 1);
    }
}
