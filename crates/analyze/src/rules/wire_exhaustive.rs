//! `wire-exhaustive`: every wire enum variant is encodable, decodable,
//! and handled.
//!
//! The serve protocol (PR 6) keeps three enums in
//! `crates/serve/src/protocol.rs` — `Frame`, `ErrorCode`, `TraceRef` —
//! whose variants each live in *three* places: an encode arm, a decode
//! arm, and at least one handler in the serve/harness session code.
//! Rust's `match` exhaustiveness covers a single `match`; it cannot see
//! that `decode`'s match is over *byte tags*, so a new variant added to
//! the enum and to `encode` but not to `decode` compiles cleanly and
//! produces frames the peer rejects as `Protocol` errors at runtime.
//!
//! The graph makes the triple contract checkable: for each variant of a
//! contract enum, there must be a `Enum::Variant` (or `Self::Variant`)
//! reference inside the enum's encode function, one inside its decode
//! function, and one anywhere in the serve/harness sources outside
//! `protocol.rs`. Each missing leg is one finding, anchored at the
//! variant's declaration.

use super::{finding_at_site, Finding, GraphContext, GraphRule};
use crate::graph::Graph;

/// The wire contract lives here.
const PROTOCOL: &str = "crates/serve/src/protocol.rs";

/// Contract enums with their (encode fn, decode fn) pairs. `TraceRef`
/// is a payload of `Frame::SubmitJob`, so its codec arms live inside
/// `Frame`'s `encode`/`decode`.
const CONTRACTS: &[(&str, &str, &str)] = &[
    ("Frame", "encode", "decode"),
    ("ErrorCode", "to_byte", "from_byte"),
    ("TraceRef", "encode", "decode"),
];

/// Where handlers may live: any serve or harness source except the
/// protocol definition itself.
const HANDLER_PREFIXES: &[&str] = &["crates/serve/src/", "crates/harness/src/"];

/// See the [module docs](self).
#[derive(Debug)]
pub struct WireExhaustive;

impl GraphRule for WireExhaustive {
    fn id(&self) -> &'static str {
        "wire-exhaustive"
    }

    fn summary(&self) -> &'static str {
        "wire enum variant missing an encode arm, decode arm, or session handler"
    }

    fn check(&self, graph: &Graph, _ctx: &GraphContext, out: &mut Vec<Finding>) {
        let Some(proto) = graph.file(PROTOCOL) else { return };
        for &(enum_name, enc_fn, dec_fn) in CONTRACTS {
            let Some(e) = proto.facts.enums.iter().find(|e| e.name == enum_name) else {
                continue;
            };
            for v in &e.variants {
                let qualified = format!("{enum_name}::{}", v.name);
                let selfed = format!("Self::{}", v.name);
                let in_fn = |f: &str| {
                    graph.references(PROTOCOL, &qualified, Some(f))
                        || graph.references(PROTOCOL, &selfed, Some(f))
                };
                let mut missing = Vec::new();
                if !in_fn(enc_fn) {
                    missing.push(format!("encode arm in `{enc_fn}`"));
                }
                if !in_fn(dec_fn) {
                    missing.push(format!("decode arm in `{dec_fn}`"));
                }
                let handled = HANDLER_PREFIXES
                    .iter()
                    .any(|p| graph.referenced_under(p, &qualified, PROTOCOL));
                if !handled {
                    missing.push("handler outside protocol.rs".to_owned());
                }
                for leg in missing {
                    out.push(finding_at_site(
                        self.id(),
                        PROTOCOL,
                        &v.site,
                        format!(
                            "wire variant `{qualified}` has no {leg} — a peer can name \
                             this variant that this side cannot round-trip or act on"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{extract, GraphFile};
    use crate::source::SourceFile;
    use std::path::Path;

    fn scan(files: &[(&str, &str)]) -> Vec<Finding> {
        let graph = Graph::build(
            files
                .iter()
                .map(|(p, s)| GraphFile {
                    path: (*p).to_owned(),
                    facts: extract(&SourceFile::from_source(p, (*s).to_owned())),
                })
                .collect(),
        );
        let mut out = Vec::new();
        WireExhaustive.check(&graph, &GraphContext { root: Path::new(".") }, &mut out);
        out
    }

    /// A minimal complete protocol: both variants encoded, decoded, and
    /// handled.
    const COMPLETE_PROTO: &str = "pub enum Frame { Ping, Pong }\n\
         impl Frame {\n\
             pub fn encode(&self) { match self { Frame::Ping => {} Frame::Pong => {} } }\n\
             pub fn decode(b: u8) { match b { 0 => Frame::Ping, _ => Frame::Pong }; }\n\
         }\n";
    const HANDLER: &str =
        "fn handle(f: Frame) { match f { Frame::Ping => {} Frame::Pong => {} } }\n";

    #[test]
    fn complete_contract_is_clean() {
        let found = scan(&[
            ("crates/serve/src/protocol.rs", COMPLETE_PROTO),
            ("crates/serve/src/session.rs", HANDLER),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn missing_decode_arm_is_one_finding_at_the_variant() {
        let proto = "pub enum Frame { Ping, Pong }\n\
             impl Frame {\n\
                 pub fn encode(&self) { match self { Frame::Ping => {} Frame::Pong => {} } }\n\
                 pub fn decode(b: u8) { match b { _ => Frame::Ping }; }\n\
             }\n";
        let found = scan(&[
            ("crates/serve/src/protocol.rs", proto),
            ("crates/serve/src/session.rs", HANDLER),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`Frame::Pong` has no decode arm"), "{}", found[0].message);
        assert_eq!(found[0].line, 1, "anchored at the variant declaration");
        assert!(found[0].snippet.contains("enum Frame"), "{}", found[0].snippet);
    }

    #[test]
    fn unhandled_variant_is_flagged_even_when_codec_is_complete() {
        let found = scan(&[
            ("crates/serve/src/protocol.rs", COMPLETE_PROTO),
            ("crates/serve/src/session.rs", "fn handle(f: Frame) { match f { Frame::Ping => {} _ => {} } }\n"),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(
            found[0].message.contains("`Frame::Pong` has no handler outside protocol.rs"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn self_qualified_codec_arms_count() {
        let proto = "pub enum ErrorCode { Bad }\n\
             impl ErrorCode {\n\
                 pub fn to_byte(self) { match self { Self::Bad => 0 }; }\n\
                 pub fn from_byte(b: u8) { match b { _ => Self::Bad }; }\n\
             }\n";
        let found = scan(&[
            ("crates/serve/src/protocol.rs", proto),
            ("crates/serve/src/session.rs", "fn f() { reply(ErrorCode::Bad); }\n"),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn workspaces_without_the_protocol_file_are_out_of_scope() {
        let found = scan(&[("crates/core/src/lib.rs", "pub enum Frame { Ping }\n")]);
        assert!(found.is_empty(), "{found:?}");
    }
}
