//! `pub-api-docs`: every `pub` item in library code carries a doc
//! comment.
//!
//! Most workspace crates already opt into `#![warn(missing_docs)]`, but
//! that lint is per-crate and opt-in; a new crate (or a removed
//! attribute) silently reopens the gap. This rule enforces the same
//! contract workspace-wide, from outside the compiler, so CI catches it
//! even where the attribute is missing.
//!
//! An item is documented when an outer doc comment (`///` or `/** */`)
//! or a `#[doc = ...]` attribute sits between the previous code token
//! and the `pub` keyword (attributes in between are fine). Re-exports
//! (`pub use`) and restricted visibility (`pub(crate)` etc.) are not
//! public API surface and are skipped; struct fields are left to the
//! judgment of `missing_docs`.

use super::{finding_at, Finding, Rule};
use crate::lexer::{CommentKind, TokenKind};
use crate::source::{FileClass, SourceFile};

/// Item keywords that introduce a documentable `pub` item.
const ITEM_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union"];

/// Modifier keywords that may sit between `pub` and the item keyword.
const MODIFIERS: &[&str] = &["unsafe", "async", "extern"];

/// See the [module docs](self).
#[derive(Debug)]
pub struct PubApiDocs;

impl Rule for PubApiDocs {
    fn id(&self) -> &'static str {
        "pub-api-docs"
    }

    fn summary(&self) -> &'static str {
        "undocumented `pub` items in library crates"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class != FileClass::Library {
            return;
        }
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.text(t) != "pub" || file.in_test(t.start) {
                continue;
            }
            let Some(kind) = pub_item_kind(file, i) else { continue };
            if is_documented(file, i) {
                continue;
            }
            out.push(finding_at(
                self.id(),
                file,
                t.start,
                format!("undocumented `pub {kind}`; add a `///` doc comment"),
            ));
        }
    }
}

/// If the `pub` at token index `i` introduces a documentable item,
/// returns the item keyword (`fn`, `struct`, ...).
fn pub_item_kind(file: &SourceFile, i: usize) -> Option<&str> {
    let toks = &file.lexed.tokens;
    let mut j = i + 1;
    // `pub(crate)` / `pub(super)` / `pub(in ...)`: restricted visibility.
    if toks.get(j).is_some_and(|t| t.kind == TokenKind::Punct) && file.text(&toks[j]) == "(" {
        return None;
    }
    loop {
        let t = toks.get(j)?;
        let text = file.text(t);
        if t.kind == TokenKind::Str || MODIFIERS.contains(&text) {
            // `extern "C" fn` — skip the ABI string and modifiers.
            j += 1;
        } else if text == "const" {
            // `pub const fn f` (modifier) vs `pub const X` (item).
            if toks.get(j + 1).is_some_and(|n| file.text(n) == "fn") {
                j += 1;
            } else {
                return Some("const");
            }
        } else if ITEM_KEYWORDS.contains(&text) {
            let name = toks.get(j + 1)?;
            // `pub fn $name` inside a `macro_rules!` body: the expansion
            // site owns the docs, not the template.
            if file.text(name) == "$" {
                return None;
            }
            // `pub mod foo;` is documented by foo.rs's own `//!` docs
            // (matching rustc's `missing_docs`); only inline
            // `pub mod foo { ... }` bodies are checked here.
            if text == "mod"
                && toks.get(j + 2).is_some_and(|t| file.text(t) == ";")
            {
                return None;
            }
            return Some(text);
        } else {
            // `pub use`, macro invocations, anything else: not an item
            // this rule covers.
            return None;
        }
    }
}

/// Whether the `pub` at token index `i` has an attached outer doc
/// comment or `#[doc]` attribute.
fn is_documented(file: &SourceFile, i: usize) -> bool {
    let toks = &file.lexed.tokens;
    // Walk backwards over any attributes directly above the item; note
    // whether one of them is `#[doc ...]`.
    let mut p = i;
    while p > 0 {
        let prev = &toks[p - 1];
        if prev.kind == TokenKind::Punct && file.text(prev) == "]" {
            // Find the matching `[` and the `#` before it.
            let mut depth = 1usize;
            let mut q = p - 1;
            while q > 0 && depth > 0 {
                q -= 1;
                match (toks[q].kind, file.text(&toks[q])) {
                    (TokenKind::Punct, "]") => depth += 1,
                    (TokenKind::Punct, "[") => depth -= 1,
                    _ => {}
                }
            }
            if q == 0 || file.text(&toks[q - 1]) != "#" {
                break;
            }
            if toks.get(q + 1).is_some_and(|t| file.text(t) == "doc") {
                return true;
            }
            p = q - 1;
        } else {
            break;
        }
    }
    // The gap between the previous code token and the item (attributes
    // included) must contain an outer doc comment.
    let gap_start = p.checked_sub(1).map_or(0, |q| toks[q].end);
    let gap_end = toks[i].start;
    file.lexed.comments.iter().any(|c| {
        c.kind == CommentKind::DocOuter && c.start >= gap_start && c.end <= gap_end
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        PubApiDocs.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_undocumented_pub_items() {
        let src = "pub fn f() {}\npub struct S;\npub const X: u32 = 1;";
        let found = run("crates/cache/src/lib.rs", src);
        assert_eq!(found.len(), 3, "{found:?}");
    }

    #[test]
    fn documented_items_pass_with_attributes_between() {
        let src = "/// Documented.\n#[derive(Debug)]\npub struct S;\n\
                   /// Also documented.\npub fn f() {}\n\
                   #[doc = \"attr-doc\"]\npub fn g() {}";
        assert!(run("crates/cache/src/lib.rs", src).is_empty());
    }

    #[test]
    fn reexports_and_restricted_visibility_are_skipped() {
        let src = "pub use foo::Bar;\npub(crate) fn internal() {}\npub(super) struct T;";
        assert!(run("crates/cache/src/lib.rs", src).is_empty());
    }

    #[test]
    fn module_inner_docs_do_not_document_the_first_item() {
        let src = "//! Module docs.\n\npub fn f() {}";
        assert_eq!(run("crates/cache/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn const_fn_and_unsafe_fn_are_detected() {
        let src = "pub const fn f() {}\npub unsafe fn g() {}\npub const X: u8 = 0;";
        let found = run("crates/cache/src/lib.rs", src);
        assert_eq!(found.len(), 3);
        assert!(found[0].message.contains("pub fn"));
        assert!(found[2].message.contains("pub const"));
    }

    #[test]
    fn mod_declarations_and_macro_templates_are_skipped() {
        let src = "pub mod reader;\npub mod writer;\n\
                   macro_rules! m { ($name:ident) => { pub fn $name() {} } }";
        assert!(run("crates/traceio/src/lib.rs", src).is_empty());
        // Inline module bodies still need docs.
        let inline = "pub mod helpers { }";
        assert_eq!(run("crates/traceio/src/lib.rs", inline).len(), 1);
    }

    #[test]
    fn doc_comment_before_previous_item_does_not_leak() {
        let src = "/// Docs for f.\npub fn f() {}\npub fn g() {}";
        let found = run("crates/cache/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].snippet.contains("g"));
    }
}
