//! `seed-discipline`: derived random streams come from [`Rng64::fork`],
//! never from ad-hoc seed arithmetic.
//!
//! PR 2 introduced SplitMix64 stream splitting (`Rng64::fork`) precisely
//! because `seed + core` / `seed ^ id` derivations produce correlated
//! streams: two workloads whose hand-derived seeds collide replay
//! overlapping address sequences, quietly biasing every cross-workload
//! comparison. This rule flags arithmetic (`+ - * ^ |` or `wrapping_*`
//! calls) applied directly to any identifier containing `seed`, anywhere
//! outside the RNG implementation itself.

use super::{finding_at, Finding, Rule};
use crate::lexer::TokenKind;
use crate::source::{FileClass, SourceFile};

/// The one place allowed to do seed arithmetic: the generator that
/// implements forking.
const EXEMPT: &[&str] = &["crates/trace/src/rng.rs"];

/// See the [module docs](self).
#[derive(Debug)]
pub struct SeedDiscipline;

impl Rule for SeedDiscipline {
    fn id(&self) -> &'static str {
        "seed-discipline"
    }

    fn summary(&self) -> &'static str {
        "ad-hoc seed arithmetic instead of Rng64::fork stream splitting"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class != FileClass::Library
            || EXEMPT.contains(&file.rel_path.as_str())
        {
            return;
        }
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_test(t.start) {
                continue;
            }
            let text = file.text(t);
            if !text.to_ascii_lowercase().contains("seed") {
                continue;
            }
            let next = toks.get(i + 1);
            let next_text = next.map_or("", |n| file.text(n));
            let prev = i.checked_sub(1).and_then(|p| toks.get(p));
            let prev_text = prev.map_or("", |p| file.text(p));
            // `seed + x`, `x ^ seed`, ... — but `&seed` (borrow), `*seed`
            // (deref), `|seed|` (closure), and unary `-` are not
            // arithmetic, so each side matches only its unambiguous
            // operators.
            let arithmetic_after = next.is_some_and(|n| n.kind == TokenKind::Punct)
                && matches!(next_text, "+" | "-" | "*" | "^" | "%");
            let arithmetic_before = prev.is_some_and(|p| p.kind == TokenKind::Punct)
                && matches!(prev_text, "+" | "^" | "%");
            // `seed.wrapping_add(...)` and friends.
            let wrapping_call = next_text == "."
                && toks
                    .get(i + 2)
                    .is_some_and(|m| file.text(m).starts_with("wrapping_"));
            if arithmetic_after || arithmetic_before || wrapping_call {
                out.push(finding_at(
                    self.id(),
                    file,
                    t.start,
                    format!(
                        "arithmetic on `{text}` derives correlated streams; use \
                         `Rng64::fork(stream_id)` to split seeds"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        SeedDiscipline.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_seed_arithmetic_forms() {
        assert_eq!(run("crates/workloads/src/lib.rs", "fn f(seed: u64, c: u64) -> u64 { seed + c }").len(), 1);
        assert_eq!(run("crates/workloads/src/lib.rs", "fn f(seed: u64, c: u64) -> u64 { c ^ seed }").len(), 1);
        assert_eq!(run("crates/workloads/src/lib.rs", "fn f(base_seed: u64) -> u64 { base_seed.wrapping_mul(3) }").len(), 1);
    }

    #[test]
    fn plain_seed_uses_are_fine() {
        let src = "fn f(seed: u64) { let r = Rng64::new(seed); let s = r.fork(seed); let b = seed.to_le_bytes(); }";
        assert!(run("crates/workloads/src/lib.rs", src).is_empty(), "construction, forking, serialization");
    }

    #[test]
    fn rng_implementation_is_exempt() {
        let src = "fn fork(&self, id: u64) -> u64 { self.seed ^ id }";
        assert!(run("crates/trace/src/rng.rs", src).is_empty());
    }
}
