//! `result-discipline`: no silently discarded `Result` in non-test code.
//!
//! The serve path earns its "wire replies identical to in-process
//! replay" claim only if every I/O error is either handled or
//! propagated: a `let _ = frame.write_to(&mut sock);` that swallows a
//! short write leaves the peer waiting on a frame that never arrives,
//! and nothing in the type system complains. The same applies to the
//! harness's report writers — a swallowed `write_all` error turns a
//! full disk into a silently truncated results table.
//!
//! Lexical per-file scanning cannot know that `write_to` returns
//! `Result`; the workspace graph can. Phase 1 records every
//! `let _ = …;` discard with its top-level callees and every
//! statement-terminal `.ok();` drop; phase 2 joins those against the
//! set of workspace functions whose return type mentions `Result`,
//! plus a fixed list of std I/O / channel methods. Discards of
//! infallible calls stay silent.
//!
//! Intentional best-effort sends (e.g. an error reply on a connection
//! that is already dying) are justified in-line:
//! `// sdbp-allow(result-discipline): best-effort reply, socket may be gone`.

use super::{finding_at_site, Finding, GraphContext, GraphRule};
use crate::graph::Graph;

/// std methods returning `Result` that matter on these paths: socket,
/// file, formatting, and channel operations. (`join` is a thread join
/// in discard position; `Path::join` is never discarded.)
const BUILTIN_RESULT_FNS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "write",
    "write_all",
    "write_fmt",
    "flush",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "set_read_timeout",
    "set_write_timeout",
    "set_nonblocking",
    "shutdown",
    "join",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "sync_all",
    "set_len",
    "write!",
    "writeln!",
];

/// See the [module docs](self).
#[derive(Debug)]
pub struct ResultDiscipline;

impl GraphRule for ResultDiscipline {
    fn id(&self) -> &'static str {
        "result-discipline"
    }

    fn summary(&self) -> &'static str {
        "discarded Result (`let _ =` / terminal `.ok()`) in non-test code"
    }

    fn check(&self, graph: &Graph, _ctx: &GraphContext, out: &mut Vec<Finding>) {
        for file in &graph.files {
            for d in &file.facts.discards {
                let culprit = if d.ends_in_ok {
                    Some("a `.ok()`-converted `Result`".to_owned())
                } else {
                    d.callees
                        .iter()
                        .find(|c| {
                            BUILTIN_RESULT_FNS.contains(&c.as_str())
                                || graph.result_fns.contains(c.as_str())
                        })
                        .map(|c| format!("the `Result` of `{c}`"))
                };
                if let Some(what) = culprit {
                    out.push(finding_at_site(
                        self.id(),
                        &file.path,
                        &d.site,
                        format!(
                            "`let _ =` discards {what}; handle the error, propagate with \
                             `?`, or justify with `// sdbp-allow(result-discipline): …`"
                        ),
                    ));
                }
            }
            for s in &file.facts.ok_drops {
                out.push(finding_at_site(
                    self.id(),
                    &file.path,
                    s,
                    "statement-terminal `.ok();` silently drops a `Result`; handle the \
                     error, propagate with `?`, or justify with \
                     `// sdbp-allow(result-discipline): …`"
                        .to_owned(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{extract, GraphFile};
    use crate::source::SourceFile;
    use std::path::Path;

    fn scan(files: &[(&str, &str)]) -> Vec<Finding> {
        let graph = Graph::build(
            files
                .iter()
                .map(|(p, s)| GraphFile {
                    path: (*p).to_owned(),
                    facts: extract(&SourceFile::from_source(p, (*s).to_owned())),
                })
                .collect(),
        );
        let mut out = Vec::new();
        ResultDiscipline.check(&graph, &GraphContext { root: Path::new(".") }, &mut out);
        out
    }

    #[test]
    fn discarding_a_builtin_result_is_flagged() {
        let found = scan(&[(
            "crates/serve/src/session.rs",
            "fn f(s: &mut TcpStream) { let _ = s.write_all(b\"x\"); }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("write_all"), "{}", found[0].message);
    }

    #[test]
    fn discarding_a_workspace_result_fn_is_flagged_cross_file() {
        let found = scan(&[
            (
                "crates/serve/src/protocol.rs",
                "pub fn write_frame() -> Result<(), FrameError> { Ok(()) }\n",
            ),
            ("crates/serve/src/session.rs", "fn f() { let _ = write_frame(); }\n"),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].path, "crates/serve/src/session.rs");
    }

    #[test]
    fn infallible_discards_and_bound_ok_are_clean() {
        let found = scan(&[(
            "crates/serve/src/session.rs",
            "fn id(x: u32) -> u32 { x }\n\
             fn f() { let _ = id(3); let parsed = text.parse::<u32>().ok(); }\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn terminal_ok_drop_is_flagged() {
        let found =
            scan(&[("crates/harness/src/runner.rs", "fn f() { sock.shutdown(Both).ok(); }\n")]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains(".ok()"), "{}", found[0].message);
    }

    #[test]
    fn test_code_discards_are_invisible() {
        let found = scan(&[(
            "crates/serve/tests/wire.rs",
            "fn f(s: &mut TcpStream) { let _ = s.write_all(b\"x\"); }\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }
}
