//! `lossless-codec-casts`: no silently-truncating integer casts inside
//! the `.sdbt` codec.
//!
//! A truncating `as` cast in the varint/delta codec corrupts traces
//! *silently*: the write succeeds, the checksums are computed over the
//! truncated bytes, and only a later replay divergence reveals the loss —
//! the worst possible failure for a format whose whole contract is
//! byte-identical record/replay (PR 2, CI's record-replay-diff gate).
//!
//! Applies to all non-test library code, workspace-wide — any file can
//! grow a persistence or wire path, and a narrowing cast is as silent in
//! arithmetic as in a codec. Crates whose narrowing casts are bounded by
//! construction (cache geometry arithmetic validated at config time) opt
//! out via `[[exempt]]` entries in `analyze.toml`. Flags `as` casts to
//! narrow integer types (u8/u16/u32 and signed siblings) unless the
//! value is visibly masked to fit on the same line (`(v & 0x7f) as u8` is
//! the varint idiom and provably lossless). Casts to 64-bit and to
//! `usize` are not flagged: 64-bit targets cannot truncate the codec's
//! values, and `usize` is at least 32 bits on every supported target.
//! Deliberate remaining casts carry `sdbp-allow` with the invariant that
//! makes them safe.

use super::{finding_at, Finding, Rule};
use crate::lexer::{int_literal_value, TokenKind};
use crate::source::{FileClass, SourceFile};

/// Maximum value representable by each flagged narrow target.
fn narrow_max(ty: &str) -> Option<u128> {
    Some(match ty {
        "u8" => u128::from(u8::MAX),
        "u16" => u128::from(u16::MAX),
        "u32" => u128::from(u32::MAX),
        "i8" => i8::MAX as u128,
        "i16" => i16::MAX as u128,
        "i32" => i32::MAX as u128,
        _ => return None,
    })
}

/// See the [module docs](self).
#[derive(Debug)]
pub struct LosslessCodecCasts;

impl Rule for LosslessCodecCasts {
    fn id(&self) -> &'static str {
        "lossless-codec-casts"
    }

    fn summary(&self) -> &'static str {
        "truncating `as` casts in the trace codec (mask or use checked conversion)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.class != FileClass::Library {
            return;
        }
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.text(t) != "as" || file.in_test(t.start) {
                continue;
            }
            let Some(target) = toks.get(i + 1) else { continue };
            let Some(max) = narrow_max(file.text(target)) else { continue };
            if masked_to_fit(file, i, max) {
                continue;
            }
            out.push(finding_at(
                self.id(),
                file,
                t.start,
                format!(
                    "`as {}` can truncate in the trace codec; mask the value on the \
                     same line (`& 0x..`) or use a checked conversion",
                    file.text(target)
                ),
            ));
        }
    }
}

/// Whether the expression cast at token index `as_idx` is visibly masked
/// to fit `max`: a `& LITERAL` with `LITERAL <= max` appears among the
/// tokens of the same source line before the `as`.
fn masked_to_fit(file: &SourceFile, as_idx: usize, max: u128) -> bool {
    let toks = &file.lexed.tokens;
    let (as_line, _) = file.line_col(toks[as_idx].start);
    let mut j = as_idx;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if file.line_col(t.start).0 != as_line {
            return false;
        }
        if t.kind == TokenKind::Punct && file.text(t) == "&" {
            if let Some(lit) = toks.get(j + 1) {
                if lit.kind == TokenKind::Number {
                    if let Some(v) = int_literal_value(file.text(lit)) {
                        if v <= max {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        LosslessCodecCasts.check(&f, &mut out);
        out
    }

    #[test]
    fn flags_unmasked_narrowing_casts() {
        let src = "fn f(n: usize) -> u32 { n as u32 }";
        let found = run("crates/traceio/src/writer.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn masked_casts_are_lossless() {
        let src = "fn f(v: u64) -> u8 { (v & 0x7f) as u8 }";
        assert!(run("crates/traceio/src/format.rs", src).is_empty());
    }

    #[test]
    fn oversized_masks_do_not_count() {
        let src = "fn f(v: u64) -> u8 { (v & 0xfff) as u8 }";
        assert_eq!(run("crates/traceio/src/format.rs", src).len(), 1);
    }

    #[test]
    fn wide_targets_and_usize_are_not_flagged() {
        let src = "fn f(v: u32) -> u64 { let _ = v as usize; v as u64 }";
        assert!(run("crates/traceio/src/reader.rs", src).is_empty());
    }

    #[test]
    fn every_library_file_is_in_scope() {
        // Workspace-wide default: narrowing casts are flagged wherever
        // they appear; crate opt-outs live in analyze.toml, not here.
        let src = "fn f(n: usize) -> u32 { n as u32 }";
        assert_eq!(run("crates/traceio/src/error.rs", src).len(), 1);
        assert_eq!(run("crates/serve/src/server.rs", src).len(), 1);
        assert_eq!(run("crates/sample/src/kmeans.rs", src).len(), 1);
    }
}
