//! `shard-determinism`: shard results must be merged by shard index,
//! never in arrival order.
//!
//! The set-sharded replay kernel (PR 9, `DESIGN.md` §13) promises
//! bit-identical output at every shard count. That promise survives
//! parallel execution only because every aggregation point indexes
//! results by their *task* order: the kernel's `merge_shards` walks
//! results by shard index, `ThreadRunner` joins handles in spawn order,
//! and the engine's fan-out fills pre-sized slots by submission index
//! (`slots[index] = outcome`). The one shape that silently breaks the
//! guarantee is accumulating results as they *arrive* — `.push(...)`
//! inside a channel-receive loop — because completion order depends on
//! scheduling, so two runs of the same input can merge in different
//! orders.
//!
//! The rule is scoped to the modules that own shard fan-out and merge
//! (the cache kernel and the engine's fan/pool machinery). Inside any
//! loop that drains a channel — a `recv`/`try_recv`/`recv_timeout`/
//! `try_iter` call, or iterating a receiver binding (`for r in rx`) —
//! every `.push(` / `.extend(` in the loop body is flagged: write into
//! an index-addressed slot instead.

use super::{finding_at, Finding, Rule};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// The shard fan-out and merge modules the invariant governs.
const SCOPE: &[&str] = &[
    "crates/cache/src/kernel.rs",
    "crates/engine/src/fan.rs",
    "crates/engine/src/pool.rs",
];

/// Channel-drain calls that yield results in completion order. Plain
/// `.iter()` is deliberately absent: slice iteration is everywhere in
/// the merge paths and never arrival-ordered.
const ARRIVAL_CALLS: &[&str] = &["recv", "try_recv", "recv_timeout", "try_iter"];

/// Receiver naming conventions, for `for r in rx`-style drains that
/// never spell a method call.
const RECEIVER_NAMES: &[&str] = &["rx", "receiver"];

/// See the [module docs](self).
#[derive(Debug)]
pub struct ShardDeterminism;

impl Rule for ShardDeterminism {
    fn id(&self) -> &'static str {
        "shard-determinism"
    }

    fn summary(&self) -> &'static str {
        "shard results pushed in channel-arrival order (index a pre-sized slot instead)"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !SCOPE.contains(&file.rel_path.as_str()) {
            return;
        }
        let toks = &file.lexed.tokens;
        let text = |i: usize| toks.get(i).map_or("", |t| file.text(t));
        let is_punct = |i: usize, c: &str| {
            toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && text(i) == c
        };
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident
                || !matches!(text(i), "for" | "while" | "loop")
                || file.in_test(t.start)
            {
                continue;
            }
            // The loop body opens at the first top-level `{` after the
            // keyword (Rust forbids bare struct literals in loop
            // headers, so no depth tracking is needed to find it).
            let mut open = i + 1;
            while open < toks.len() && !is_punct(open, "{") {
                open += 1;
            }
            if open >= toks.len() {
                continue;
            }
            // Match the body's braces to find its end.
            let mut depth = 1i32;
            let mut close = open + 1;
            while close < toks.len() && depth > 0 {
                if is_punct(close, "{") {
                    depth += 1;
                } else if is_punct(close, "}") {
                    depth -= 1;
                }
                close += 1;
            }
            // Does this loop drain a channel? Either an arrival-order
            // call anywhere in its span, or the header iterates a
            // receiver binding by name.
            let drains_calls = (i..close).any(|j| {
                toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                    && ARRIVAL_CALLS.contains(&text(j))
                    && is_punct(j + 1, "(")
            });
            let drains_receiver = (i..open).any(|j| {
                toks.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                    && RECEIVER_NAMES.contains(&text(j))
            });
            if !(drains_calls || drains_receiver) {
                continue;
            }
            // Flag every order-dependent accumulation in the body.
            for j in open..close {
                let method = text(j + 1);
                if is_punct(j, ".")
                    && matches!(method, "push" | "extend")
                    && is_punct(j + 2, "(")
                {
                    out.push(finding_at(
                        self.id(),
                        file,
                        toks[j + 1].start,
                        format!(
                            "`.{method}(...)` inside a channel-draining loop accumulates \
                             shard results in arrival order; results must be merged by \
                             shard index — write into a pre-sized slot \
                             (`slots[index] = ...`) as the engine fan-out does"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source(path, src.to_owned());
        let mut out = Vec::new();
        ShardDeterminism.check(&f, &mut out);
        out
    }

    #[test]
    fn push_in_a_recv_loop_is_flagged() {
        let src = "fn merge() {\n    let mut results = Vec::new();\n    while let Ok(r) = rx.recv() {\n        results.push(r);\n    }\n}\n";
        let found = run("crates/cache/src/kernel.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
        assert!(found[0].message.contains("arrival order"), "{}", found[0].message);
    }

    #[test]
    fn iterating_a_receiver_is_flagged_without_a_recv_call() {
        let src = "fn merge() {\n    let mut results = Vec::new();\n    for r in rx {\n        results.push(r);\n    }\n}\n";
        assert_eq!(run("crates/engine/src/fan.rs", src).len(), 1);
    }

    #[test]
    fn indexed_slot_fill_is_clean() {
        let src = "fn merge(n: usize) {\n    let mut slots: Vec<Option<u32>> = (0..n).map(|_| None).collect();\n    while let Ok((index, r)) = rx.recv() {\n        slots[index] = Some(r);\n    }\n}\n";
        assert!(run("crates/engine/src/pool.rs", src).is_empty());
    }

    #[test]
    fn push_outside_channel_loops_is_clean() {
        let src = "fn ranges() {\n    let mut v = Vec::new();\n    for i in 0..4 {\n        v.push(i);\n    }\n}\n";
        assert!(run("crates/cache/src/kernel.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let src = "fn f() { for r in rx { v.push(r); } }\n";
        assert!(run("crates/serve/src/server.rs", src).is_empty());
        assert!(run("crates/harness/src/runner.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { for r in rx { v.push(r); } }\n}\n";
        assert!(run("crates/engine/src/fan.rs", src).is_empty());
    }
}
