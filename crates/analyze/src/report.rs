//! Report rendering: human-readable diagnostics on stderr-style text and
//! a machine-readable JSON document (`target/analyze-report.json`).
//!
//! Both renderings consume the same deterministically-ordered finding
//! list (path, then line, then column, then rule id), so two runs over
//! the same tree produce byte-identical reports — the linter holds
//! itself to the determinism bar it enforces.

use sdbp_engine::json::JsonWriter;

use crate::rules::{Finding, RuleInfo};

/// JSON schema identifier, bumped on breaking shape changes.
pub const REPORT_SCHEMA: &str = "sdbp-analyze-report/v2";

/// A finding that was matched by an escape hatch and therefore does not
/// fail the run, retained for the audit section of the report.
#[derive(Clone, Debug)]
pub struct Allowed {
    /// The suppressed finding.
    pub finding: Finding,
    /// Where the suppression came from: `"analyze.toml"` or `"line-escape"`.
    pub source: &'static str,
    /// The justification text attached to the suppression.
    pub reason: String,
}

/// The outcome of one workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings — these fail the run.
    pub findings: Vec<Finding>,
    /// Suppressed findings with their justifications.
    pub allowed: Vec<Allowed>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings dropped by `[[exempt]]` rule opt-outs.
    pub exempted: usize,
    /// Files whose phase-1 analysis was reused from the incremental
    /// cache.
    pub cache_hits: usize,
}

/// Sorts findings into the canonical report order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

/// Renders the human-readable report.
#[must_use]
pub fn render_human(report: &Report, rules: &[RuleInfo]) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n    {}\n",
            f.path, f.line, f.col, f.rule, f.message, f.snippet
        ));
    }
    if !report.findings.is_empty() {
        out.push('\n');
    }
    let mut per_rule: Vec<(&str, usize)> = rules
        .iter()
        .map(|r| (r.id, report.findings.iter().filter(|f| f.rule == r.id).count()))
        .collect();
    per_rule.retain(|(_, n)| *n > 0);
    if per_rule.is_empty() {
        out.push_str(&format!(
            "analyze: clean — {} files scanned ({} cached), 0 findings ({} allowed, {} exempted)\n",
            report.files_scanned,
            report.cache_hits,
            report.allowed.len(),
            report.exempted
        ));
    } else {
        for (id, n) in &per_rule {
            out.push_str(&format!("analyze: {n} finding(s) for {id}\n"));
        }
        out.push_str(&format!(
            "analyze: FAILED — {} files scanned ({} cached), {} finding(s) ({} allowed, {} exempted)\n",
            report.files_scanned,
            report.cache_hits,
            report.findings.len(),
            report.allowed.len(),
            report.exempted
        ));
    }
    out
}

/// Renders the JSON report document.
#[must_use]
pub fn render_json(report: &Report, rules: &[RuleInfo]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string(REPORT_SCHEMA);
    w.key("files_scanned").uint(report.files_scanned as u64);
    w.key("cache_hits").uint(report.cache_hits as u64);
    w.key("exempted").uint(report.exempted as u64);
    w.key("clean").boolean(report.findings.is_empty());

    w.key("rules").begin_array();
    for r in rules {
        let count = report.findings.iter().filter(|f| f.rule == r.id).count();
        w.begin_object();
        w.key("id").string(r.id);
        w.key("summary").string(r.summary);
        w.key("findings").uint(count as u64);
        w.end_object();
    }
    w.end_array();

    w.key("findings").begin_array();
    for f in &report.findings {
        write_finding(&mut w, f);
    }
    w.end_array();

    w.key("allowed").begin_array();
    for a in &report.allowed {
        w.begin_object();
        w.key("source").string(a.source);
        w.key("reason").string(&a.reason);
        w.key("finding");
        write_finding(&mut w, &a.finding);
        w.end_object();
    }
    w.end_array();

    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

fn write_finding(w: &mut JsonWriter, f: &Finding) {
    w.begin_object();
    w.key("rule").string(f.rule);
    w.key("path").string(&f.path);
    w.key("line").uint(u64::from(f.line));
    w.key("col").uint(u64::from(f.col));
    w.key("message").string(&f.message);
    w.key("snippet").string(&f.snippet);
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::all_rule_info;

    fn finding(path: &str, line: u32, col: u32, rule: &'static str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            col,
            message: "m".to_owned(),
            snippet: "s".to_owned(),
        }
    }

    #[test]
    fn findings_sort_by_path_line_col_rule() {
        let mut v = vec![
            finding("b.rs", 1, 1, "no-panic-paths"),
            finding("a.rs", 2, 1, "no-panic-paths"),
            finding("a.rs", 1, 5, "seed-discipline"),
            finding("a.rs", 1, 5, "no-panic-paths"),
        ];
        sort_findings(&mut v);
        assert_eq!(v[0].rule, "no-panic-paths");
        assert_eq!(v[0].path, "a.rs");
        assert_eq!(v[1].rule, "seed-discipline");
        assert_eq!(v[3].path, "b.rs");
    }

    #[test]
    fn clean_report_renders_clean_line_and_valid_json() {
        let report = Report { files_scanned: 12, ..Report::default() };
        let rules = all_rule_info();
        let human = render_human(&report, &rules);
        assert!(human.contains("clean"), "{human}");
        let json = render_json(&report, &rules);
        assert!(json.contains("\"schema\":\"sdbp-analyze-report/v2\""));
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"files_scanned\":12"));
    }

    #[test]
    fn failing_report_lists_findings_in_both_formats() {
        let mut report = Report { files_scanned: 3, ..Report::default() };
        report.findings.push(finding("crates/x/src/lib.rs", 4, 9, "no-panic-paths"));
        report.allowed.push(Allowed {
            finding: finding("crates/y/src/lib.rs", 1, 1, "no-wallclock-in-sim"),
            source: "analyze.toml",
            reason: "telemetry".to_owned(),
        });
        let rules = all_rule_info();
        let human = render_human(&report, &rules);
        assert!(human.contains("crates/x/src/lib.rs:4:9"), "{human}");
        assert!(human.contains("FAILED"), "{human}");
        let json = render_json(&report, &rules);
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"source\":\"analyze.toml\""));
        assert!(json.contains("\"reason\":\"telemetry\""));
    }
}
