//! A hand-rolled, error-tolerant recursive-descent *item* parser on top
//! of [`crate::lexer`].
//!
//! The workspace is std-only, so there is no `syn` to lean on — and the
//! cross-file rules ([`crate::graph`]) do not need expression-level
//! precision anyway. What they need is the *shape* of each file:
//!
//! * which items exist (`fn`, `enum`, `struct`, `impl`, `mod`, ...),
//!   with byte spans;
//! * every enum's variant list, span-accurate (so `wire-exhaustive` can
//!   anchor "variant X has no decode arm" at the declaration);
//! * every function's name and return-type text (so `result-discipline`
//!   can resolve "does `write_to` return a `Result`?" across files);
//! * function body token ranges (so statement-level rules like
//!   `mutex-discipline` can walk one body at a time).
//!
//! The parser is deliberately tolerant: anything it does not recognize
//! is skipped token-by-token, because it runs over code `rustc` already
//! accepted — a parse gap must degrade to "no facts extracted", never to
//! a crash or a false finding.

use crate::lexer::{Token, TokenKind};

/// One enum variant, anchored at its identifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Variant {
    /// Variant name (`Hello`, `Archive`, ...).
    pub name: String,
    /// Byte offset of the variant identifier.
    pub start: usize,
}

/// What kind of item an [`Item`] is, with per-kind payload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ItemKind {
    /// `fn name(...) -> Ret { ... }`; `ret` is the raw return-type text
    /// (`""` for `-> ()`-less signatures).
    Fn {
        /// Raw source text of the return type, `""` when absent.
        ret: String,
    },
    /// `enum Name { V1, V2(..), .. }`.
    Enum {
        /// The variants, in declaration order.
        variants: Vec<Variant>,
    },
    /// `struct Name ...`.
    Struct,
    /// `impl Type { .. }` or `impl Trait for Type { .. }`; `type_name`
    /// is the implementing type's path text.
    Impl {
        /// Path text of the type being implemented.
        type_name: String,
    },
    /// `mod name { .. }` (inline) or `mod name;`.
    Mod,
    /// `trait Name { .. }`.
    Trait,
    /// Anything else recognized enough to skip (`use`, `const`,
    /// `static`, `type`, macro invocations, ...).
    Other,
}

/// One parsed item.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Item {
    /// Item kind and payload.
    pub kind: ItemKind,
    /// Item name (`""` for unnamed/unrecognized items).
    pub name: String,
    /// Byte offset where the item starts (at its first keyword token).
    pub start: usize,
    /// Byte offset one past the item's last token.
    pub end: usize,
    /// Token-index range `[lo, hi)` of the item's `{ ... }` body
    /// *contents* (braces excluded); `None` for bodyless items.
    pub body: Option<(usize, usize)>,
    /// Nested items (for `mod` and `impl` bodies).
    pub children: Vec<Item>,
}

/// The parsed shape of one file.
#[derive(Clone, Default, Debug)]
pub struct Ast {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

impl Ast {
    /// Depth-first iteration over all items (top-level and nested).
    pub fn walk(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        fn visit<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for item in items {
                out.push(item);
                visit(&item.children, out);
            }
        }
        visit(&self.items, &mut out);
        out
    }

    /// Every function item (including those inside `impl`/`mod` blocks).
    pub fn fns(&self) -> Vec<&Item> {
        self.walk()
            .into_iter()
            .filter(|i| matches!(i.kind, ItemKind::Fn { .. }))
            .collect()
    }

    /// Every enum item.
    pub fn enums(&self) -> Vec<&Item> {
        self.walk()
            .into_iter()
            .filter(|i| matches!(i.kind, ItemKind::Enum { .. }))
            .collect()
    }

    /// The innermost function item whose body token range contains token
    /// index `tok_idx`, if any.
    pub fn enclosing_fn(&self, tok_idx: usize) -> Option<&Item> {
        let mut best: Option<&Item> = None;
        for item in self.walk() {
            if let (ItemKind::Fn { .. }, Some((lo, hi))) = (&item.kind, item.body) {
                if tok_idx >= lo && tok_idx < hi {
                    let tighter =
                        best.and_then(|b| b.body).is_none_or(|(blo, _)| lo >= blo);
                    if tighter {
                        best = Some(item);
                    }
                }
            }
        }
        best
    }
}

/// Parser state: a token slice plus the source it indexes into.
struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    pos: usize,
}

/// Parses the item structure of `src` from its lexed `toks`.
pub fn parse(src: &str, toks: &[Token]) -> Ast {
    let mut p = Parser { src, toks, pos: 0 };
    Ast { items: p.items_until(toks.len()) }
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.toks
            .get(i)
            .and_then(|t| self.src.get(t.start..t.end))
            .unwrap_or("")
    }

    fn is_punct(&self, i: usize, c: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && self.text(i) == c
    }

    fn start_of(&self, i: usize) -> usize {
        self.toks.get(i).map_or(self.src.len(), |t| t.start)
    }

    fn end_of(&self, i: usize) -> usize {
        self.toks.get(i).map_or(self.src.len(), |t| t.end)
    }

    /// Advances past one balanced `open`..`close` group assuming `pos`
    /// is at the opening token; tolerant of truncation.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while self.pos < self.toks.len() {
            if self.is_punct(self.pos, open) {
                depth += 1;
            } else if self.is_punct(self.pos, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Advances past a generics list if `pos` is at `<`. Angle brackets
    /// are matched by depth; `->` and comparison operators cannot appear
    /// inside a declaration-site generics list, so this is safe.
    fn skip_generics(&mut self) {
        if self.is_punct(self.pos, "<") {
            self.skip_balanced("<", ">");
        }
    }

    /// Skips `#[...]` attributes and doc comments live out-of-band, so
    /// only the bracket groups need skipping.
    fn skip_attributes(&mut self) {
        while self.is_punct(self.pos, "#") {
            self.pos += 1; // `#`
            if self.is_punct(self.pos, "!") {
                self.pos += 1; // inner attribute `#![...]`
            }
            if self.is_punct(self.pos, "[") {
                self.skip_balanced("[", "]");
            }
        }
    }

    /// Skips visibility (`pub`, `pub(crate)`, `pub(in path)`) and other
    /// item modifiers (`unsafe`, `async`, `extern "C"`, `default`).
    fn skip_modifiers(&mut self) {
        loop {
            match self.text(self.pos) {
                "pub" => {
                    self.pos += 1;
                    if self.is_punct(self.pos, "(") {
                        self.skip_balanced("(", ")");
                    }
                }
                "unsafe" | "async" | "default" => self.pos += 1,
                "extern" => {
                    self.pos += 1;
                    if self.toks.get(self.pos).is_some_and(|t| t.kind == TokenKind::Str) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Parses items until token index `limit`, advancing tolerantly.
    fn items_until(&mut self, limit: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < limit {
            let before = self.pos;
            if let Some(item) = self.item(limit) {
                items.push(item);
            }
            if self.pos <= before {
                self.pos = before + 1; // never stall
            }
        }
        items
    }

    /// Parses one item at `pos`, or skips one unrecognized token.
    fn item(&mut self, limit: usize) -> Option<Item> {
        self.skip_attributes();
        self.skip_modifiers();
        if self.pos >= limit {
            return None;
        }
        let start_tok = self.pos;
        let start = self.start_of(start_tok);
        match self.text(self.pos) {
            "fn" => Some(self.fn_item(start)),
            "const" => {
                // `const fn` is a function; `const NAME: T = ..;` is not.
                self.pos += 1;
                if self.text(self.pos) == "fn" {
                    Some(self.fn_item(start))
                } else {
                    self.skip_to_semicolon();
                    Some(self.other(start, String::new()))
                }
            }
            "enum" => Some(self.enum_item(start)),
            "struct" | "union" => Some(self.struct_item(start)),
            "impl" => Some(self.impl_item(start)),
            "mod" => Some(self.mod_item(start)),
            "trait" => Some(self.trait_item(start)),
            "use" | "static" | "type" | "macro_rules" | "macro" => {
                let name = self.text(self.pos + 1).to_owned();
                self.skip_statement_like();
                Some(self.other(start, name))
            }
            _ => {
                self.pos += 1;
                None
            }
        }
    }

    fn other(&self, start: usize, name: String) -> Item {
        Item {
            kind: ItemKind::Other,
            name,
            start,
            end: self.end_of(self.pos.saturating_sub(1)),
            body: None,
            children: Vec::new(),
        }
    }

    /// Skips to just past the next `;`, balancing braces on the way (so
    /// `static X: [u8; 2] = { .. };` and `macro_rules! m { .. }` are both
    /// survived; a `{..}` group at depth 0 also terminates, covering
    /// brace-bodied macros without a trailing semicolon).
    fn skip_statement_like(&mut self) {
        while self.pos < self.toks.len() {
            if self.is_punct(self.pos, ";") {
                self.pos += 1;
                return;
            }
            if self.is_punct(self.pos, "{") {
                self.skip_balanced("{", "}");
                // `macro_rules! m { .. }` ends here; `= { .. };` has the
                // `;` next, consumed on the next loop turn.
                if !self.is_punct(self.pos, ";") {
                    return;
                }
                continue;
            }
            if self.is_punct(self.pos, "(") {
                self.skip_balanced("(", ")");
                continue;
            }
            if self.is_punct(self.pos, "[") {
                self.skip_balanced("[", "]");
                continue;
            }
            self.pos += 1;
        }
    }

    fn skip_to_semicolon(&mut self) {
        self.skip_statement_like();
    }

    /// Parses `fn name<G>(params) -> Ret where .. { body }` with `pos`
    /// at `fn`.
    fn fn_item(&mut self, start: usize) -> Item {
        self.pos += 1; // `fn`
        let name = self.text(self.pos).to_owned();
        self.pos += 1;
        self.skip_generics();
        if self.is_punct(self.pos, "(") {
            self.skip_balanced("(", ")");
        }
        // Return type: raw text between `->` and `{` / `;` / `where`.
        let mut ret = String::new();
        if self.is_punct(self.pos, "-") && self.is_punct(self.pos + 1, ">") {
            self.pos += 2;
            let ret_start = self.start_of(self.pos);
            let mut ret_end = ret_start;
            while self.pos < self.toks.len() {
                let t = self.text(self.pos);
                if t == "where" || self.is_punct(self.pos, "{") || self.is_punct(self.pos, ";")
                {
                    break;
                }
                // `<` groups may contain `{`-free tokens only; skip them
                // wholesale so `Result<Foo, {integer}>`-ish text never
                // confuses the brace scan.
                if self.is_punct(self.pos, "<") {
                    self.skip_balanced("<", ">");
                    ret_end = self.end_of(self.pos.saturating_sub(1));
                    continue;
                }
                ret_end = self.end_of(self.pos);
                self.pos += 1;
            }
            ret = self.src.get(ret_start..ret_end).unwrap_or("").to_owned();
        }
        // `where` clause: skip until the body brace or `;`.
        while self.pos < self.toks.len()
            && !self.is_punct(self.pos, "{")
            && !self.is_punct(self.pos, ";")
        {
            self.pos += 1;
        }
        let mut body = None;
        if self.is_punct(self.pos, "{") {
            let body_lo = self.pos + 1;
            self.skip_balanced("{", "}");
            body = Some((body_lo, self.pos.saturating_sub(1)));
        } else if self.is_punct(self.pos, ";") {
            self.pos += 1;
        }
        Item {
            kind: ItemKind::Fn { ret },
            name,
            start,
            end: self.end_of(self.pos.saturating_sub(1)),
            body,
            children: Vec::new(),
        }
    }

    /// Parses `enum Name<G> { V1, V2(..), V3 { .. }, V4 = expr, }`.
    fn enum_item(&mut self, start: usize) -> Item {
        self.pos += 1; // `enum`
        let name = self.text(self.pos).to_owned();
        self.pos += 1;
        self.skip_generics();
        // `where` clause before the brace.
        while self.pos < self.toks.len() && !self.is_punct(self.pos, "{") {
            if self.is_punct(self.pos, ";") {
                // `enum Foo;` is not Rust, but stay tolerant.
                self.pos += 1;
                return Item {
                    kind: ItemKind::Enum { variants: Vec::new() },
                    name,
                    start,
                    end: self.end_of(self.pos - 1),
                    body: None,
                    children: Vec::new(),
                };
            }
            self.pos += 1;
        }
        let body_lo = self.pos + 1;
        let mut variants = Vec::new();
        self.pos += 1; // `{`
        // Variant list: at brace depth 1, an identifier directly after
        // `{` or `,` (attributes skipped) is a variant name.
        let mut expect_variant = true;
        let mut depth = 1usize;
        while self.pos < self.toks.len() && depth > 0 {
            if self.is_punct(self.pos, "{") || self.is_punct(self.pos, "(") {
                depth += 1;
                self.pos += 1;
                continue;
            }
            if self.is_punct(self.pos, "}") || self.is_punct(self.pos, ")") {
                depth -= 1;
                self.pos += 1;
                continue;
            }
            if depth == 1 {
                if expect_variant {
                    self.skip_attributes();
                    if let Some(t) = self.toks.get(self.pos) {
                        if t.kind == TokenKind::Ident && !self.is_punct(self.pos, "}") {
                            variants.push(Variant {
                                name: self.text(self.pos).to_owned(),
                                start: t.start,
                            });
                            expect_variant = false;
                        }
                    }
                } else if self.is_punct(self.pos, ",") {
                    expect_variant = true;
                }
            }
            self.pos += 1;
        }
        Item {
            kind: ItemKind::Enum { variants },
            name,
            start,
            end: self.end_of(self.pos.saturating_sub(1)),
            body: Some((body_lo, self.pos.saturating_sub(1))),
            children: Vec::new(),
        }
    }

    fn struct_item(&mut self, start: usize) -> Item {
        self.pos += 1; // `struct`
        let name = self.text(self.pos).to_owned();
        self.pos += 1;
        self.skip_generics();
        // Tuple struct `(..);`, unit struct `;`, or braced fields.
        while self.pos < self.toks.len() {
            if self.is_punct(self.pos, ";") {
                self.pos += 1;
                break;
            }
            if self.is_punct(self.pos, "(") {
                self.skip_balanced("(", ")");
                continue;
            }
            if self.is_punct(self.pos, "{") {
                self.skip_balanced("{", "}");
                break;
            }
            self.pos += 1;
        }
        Item {
            kind: ItemKind::Struct,
            name,
            start,
            end: self.end_of(self.pos.saturating_sub(1)),
            body: None,
            children: Vec::new(),
        }
    }

    /// Parses `impl<G> Type { .. }` and `impl<G> Trait for Type { .. }`,
    /// recursing into the body for methods.
    fn impl_item(&mut self, start: usize) -> Item {
        self.pos += 1; // `impl`
        self.skip_generics();
        // Collect path text until `{`, `for`, or `where`; a `for` resets
        // the collection (the implementing type follows it).
        let mut ty_start = self.start_of(self.pos);
        let mut ty_end = ty_start;
        while self.pos < self.toks.len() && !self.is_punct(self.pos, "{") {
            if self.text(self.pos) == "for" {
                self.pos += 1;
                ty_start = self.start_of(self.pos);
                ty_end = ty_start;
                continue;
            }
            if self.text(self.pos) == "where" {
                // Skip the clause without extending the type text.
                while self.pos < self.toks.len() && !self.is_punct(self.pos, "{") {
                    self.pos += 1;
                }
                break;
            }
            if self.is_punct(self.pos, "<") {
                self.skip_balanced("<", ">");
                ty_end = self.end_of(self.pos.saturating_sub(1));
                continue;
            }
            ty_end = self.end_of(self.pos);
            self.pos += 1;
        }
        let type_name = self.src.get(ty_start..ty_end).unwrap_or("").trim().to_owned();
        let mut children = Vec::new();
        let mut body = None;
        if self.is_punct(self.pos, "{") {
            let body_lo = self.pos + 1;
            // Find the matching close, then parse the contents.
            let save = self.pos;
            self.skip_balanced("{", "}");
            let body_hi = self.pos.saturating_sub(1);
            let after = self.pos;
            self.pos = save + 1;
            children = self.items_until(body_hi);
            self.pos = after;
            body = Some((body_lo, body_hi));
        }
        Item {
            kind: ItemKind::Impl { type_name },
            name: String::new(),
            start,
            end: self.end_of(self.pos.saturating_sub(1)),
            body,
            children,
        }
    }

    fn mod_item(&mut self, start: usize) -> Item {
        self.pos += 1; // `mod`
        let name = self.text(self.pos).to_owned();
        self.pos += 1;
        let mut children = Vec::new();
        let mut body = None;
        if self.is_punct(self.pos, "{") {
            let body_lo = self.pos + 1;
            let save = self.pos;
            self.skip_balanced("{", "}");
            let body_hi = self.pos.saturating_sub(1);
            let after = self.pos;
            self.pos = save + 1;
            children = self.items_until(body_hi);
            self.pos = after;
            body = Some((body_lo, body_hi));
        } else if self.is_punct(self.pos, ";") {
            self.pos += 1;
        }
        Item {
            kind: ItemKind::Mod,
            name,
            start,
            end: self.end_of(self.pos.saturating_sub(1)),
            body,
            children,
        }
    }

    fn trait_item(&mut self, start: usize) -> Item {
        self.pos += 1; // `trait`
        let name = self.text(self.pos).to_owned();
        self.pos += 1;
        while self.pos < self.toks.len() && !self.is_punct(self.pos, "{") {
            if self.is_punct(self.pos, ";") {
                self.pos += 1;
                return Item {
                    kind: ItemKind::Trait,
                    name,
                    start,
                    end: self.end_of(self.pos - 1),
                    body: None,
                    children: Vec::new(),
                };
            }
            self.pos += 1;
        }
        let body_lo = self.pos + 1;
        let save = self.pos;
        self.skip_balanced("{", "}");
        let body_hi = self.pos.saturating_sub(1);
        let after = self.pos;
        self.pos = save + 1;
        let children = self.items_until(body_hi);
        self.pos = after;
        Item {
            kind: ItemKind::Trait,
            name,
            start,
            end: self.end_of(self.pos.saturating_sub(1)),
            body: Some((body_lo, body_hi)),
            children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast_of(src: &str) -> Ast {
        parse(src, &lex(src).tokens)
    }

    #[test]
    fn fn_signatures_capture_name_and_return_type() {
        let ast = ast_of(
            "fn plain() {}\n\
             pub fn with_ret(x: u32) -> Result<u32, String> { Ok(x) }\n\
             pub(crate) const fn k() -> usize { 4 }\n\
             fn generic<T: Clone>(t: T) -> Option<T> where T: Send { Some(t) }\n",
        );
        let fns = ast.fns();
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["plain", "with_ret", "k", "generic"]);
        let rets: Vec<&str> = fns
            .iter()
            .map(|f| match &f.kind {
                ItemKind::Fn { ret } => ret.as_str(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rets[0], "");
        assert!(rets[1].contains("Result"), "{:?}", rets[1]);
        assert_eq!(rets[2], "usize");
        assert!(rets[3].contains("Option"), "{:?}", rets[3]);
    }

    #[test]
    fn enum_variants_are_listed_with_spans() {
        let src = "pub enum Frame {\n    Hello { version: u32 },\n    #[allow(dead_code)]\n    TraceChunk(Vec<u8>),\n    Goodbye,\n}\n";
        let ast = ast_of(src);
        let enums = ast.enums();
        assert_eq!(enums.len(), 1);
        assert_eq!(enums[0].name, "Frame");
        let ItemKind::Enum { variants } = &enums[0].kind else { panic!("enum") };
        let names: Vec<&str> = variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Hello", "TraceChunk", "Goodbye"]);
        // Span accuracy: the recorded offset is the variant identifier.
        for v in variants {
            assert_eq!(&src[v.start..v.start + v.name.len()], v.name);
        }
    }

    #[test]
    fn enum_payload_identifiers_are_not_variants() {
        let src = "enum E { A(Result<u32, String>), B { field: Vec<u8> }, C = 3 }";
        let ast = ast_of(src);
        let ItemKind::Enum { variants } = &ast.enums()[0].kind else { panic!("enum") };
        let names: Vec<&str> = variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn impl_blocks_nest_methods() {
        let src = "struct S;\nimpl S {\n    fn a(&self) -> bool { true }\n    pub fn b(&self) {}\n}\nimpl std::fmt::Display for S {\n    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n}\n";
        let ast = ast_of(src);
        let fns = ast.fns();
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "fmt"]);
        let impls: Vec<&Item> = ast
            .walk()
            .into_iter()
            .filter(|i| matches!(i.kind, ItemKind::Impl { .. }))
            .collect();
        assert_eq!(impls.len(), 2);
        let ItemKind::Impl { type_name } = &impls[1].kind else { panic!("impl") };
        assert_eq!(type_name, "S", "trait impls name the implementing type");
    }

    #[test]
    fn mods_nest_and_bodyless_items_are_tolerated() {
        let src = "mod outer {\n    mod inner;\n    pub fn f() -> std::io::Result<()> { Ok(()) }\n}\nuse std::io::Read;\nconst N: usize = 4;\nstatic T: [u8; 2] = [0, 1];\ntype Alias = u64;\n";
        let ast = ast_of(src);
        assert_eq!(ast.items[0].name, "outer");
        assert_eq!(ast.items[0].children.len(), 2);
        let fns = ast.fns();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
    }

    #[test]
    fn enclosing_fn_resolves_the_innermost_body() {
        let src = "fn outer() { helper(); }\nfn target() -> Result<(), ()> { other(); Ok(()) }\n";
        let toks = lex(src).tokens;
        let ast = parse(src, &toks);
        let other_idx = toks
            .iter()
            .position(|t| &src[t.start..t.end] == "other")
            .expect("token");
        assert_eq!(ast.enclosing_fn(other_idx).expect("enclosing").name, "target");
    }

    #[test]
    fn traits_and_macros_do_not_derail_parsing() {
        let src = "trait T {\n    fn required(&self) -> Result<u8, ()>;\n    fn provided(&self) {}\n}\nmacro_rules! m { ($x:expr) => { $x }; }\nfn after() {}\n";
        let ast = ast_of(src);
        let names: Vec<&str> = ast.fns().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["required", "provided", "after"]);
    }

    #[test]
    fn malformed_input_degrades_without_panicking() {
        for src in ["fn", "enum {", "impl {{{", "struct ;;;", "fn f( {", "mod m {"] {
            let _ = ast_of(src);
        }
    }

    #[test]
    fn fn_body_token_ranges_exclude_braces() {
        let src = "fn f() { a(); }";
        let toks = lex(src).tokens;
        let ast = parse(src, &toks);
        let (lo, hi) = ast.fns()[0].body.expect("body");
        let texts: Vec<&str> = toks[lo..hi].iter().map(|t| &src[t.start..t.end]).collect();
        assert_eq!(texts, vec!["a", "(", ")", ";"]);
    }
}
