//! A hand-rolled, span-tracking Rust lexer.
//!
//! The rule engine needs exactly one guarantee from this module: a token
//! stream in which *nothing inside a comment, string literal, char
//! literal, or raw string* can be mistaken for code. Every rule in
//! [`crate::rules`] is a pattern over this stream, so the lexer is the
//! single place where "the word `unwrap` appears in a doc example" is
//! separated from "the code calls `.unwrap()`".
//!
//! The lexer is deliberately lossless about *where* things are: each
//! token and comment carries its byte span, and [`LineIndex`] converts
//! spans to 1-based line/column pairs for diagnostics.
//!
//! Covered syntax: line and block comments (nested, doc-comment flavors
//! distinguished, since `pub-api-docs` needs them and `sdbp-allow`
//! escapes live in comments), string/char/byte/raw-string literals
//! (including `r#".."#` hash counting), lifetimes vs. char literals,
//! numeric literals (enough structure that `0..4` lexes as two numbers
//! and a range, not one malformed number), identifiers, and single-char
//! punctuation. Multi-char operators are left as single-char punctuation
//! tokens; rules match short sequences instead.

/// What a token is.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `pub`, `as`, ...).
    Ident,
    /// A lifetime (`'a`); kept distinct so it is never confused with a
    /// char literal.
    Lifetime,
    /// Integer or float literal, suffix included (`0x7f`, `1_000u64`).
    Number,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `[`, `!`, ...).
    Punct,
}

/// One lexed token with its byte span.
#[derive(Copy, Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Which comment flavor a [`Comment`] is.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CommentKind {
    /// `// ...` or `/* ... */` — plain trivia (where `sdbp-allow`
    /// escapes live).
    Plain,
    /// `/// ...` or `/** ... */` — documents the following item.
    DocOuter,
    /// `//! ...` or `/*! ... */` — documents the enclosing item.
    DocInner,
}

/// One comment with its byte span; comments are collected out-of-band so
/// token-stream rules never see them.
#[derive(Copy, Clone, Debug)]
pub struct Comment {
    /// Comment flavor.
    pub kind: CommentKind,
    /// Byte offset of the leading `/`.
    pub start: usize,
    /// Byte offset one past the end (past the newline-exclusive text for
    /// line comments, past the closing `*/` for block comments).
    pub end: usize,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Byte-offset → line/column conversion table.
#[derive(Debug)]
pub struct LineIndex {
    /// Byte offset at which each line starts; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line number holding byte offset `byte`.
    pub fn line(&self, byte: usize) -> u32 {
        match self.starts.binary_search(&byte) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// 1-based (line, column) of byte offset `byte`; the column counts
    /// characters, not bytes, so diagnostics stay honest in the presence
    /// of non-ASCII text.
    pub fn line_col(&self, src: &str, byte: usize) -> (u32, u32) {
        let line = self.line(byte);
        let start = self.starts[(line - 1) as usize];
        let col = src
            .get(start..byte)
            .map_or(byte - start, |s| s.chars().count())
            as u32
            + 1;
        (line, col)
    }

    /// The full text of 1-based line `line` (newline excluded), or `""`
    /// when out of range.
    pub fn line_text<'a>(&self, src: &'a str, line: u32) -> &'a str {
        let i = (line as usize).wrapping_sub(1);
        let Some(&start) = self.starts.get(i) else { return "" };
        let end = self.starts.get(i + 1).map_or(src.len(), |&e| e);
        src.get(start..end).map_or("", |s| s.trim_end_matches(['\n', '\r']))
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans a normal (escape-processing) string starting at the opening
/// quote `open` at offset `i`; returns the offset one past the closing
/// quote (or `len` on unterminated input).
fn scan_quoted(b: &[u8], mut i: usize, open: u8) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            c if c == open => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Scans a raw string whose body starts right after `r` + `hashes` `#`s +
/// the opening quote; `i` is the offset of the opening quote. Returns the
/// offset one past the final closing hash.
fn scan_raw_string(b: &[u8], i: usize, hashes: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        if b[j] == b'"' && b.len() - j > hashes && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    b.len()
}

/// Counts `#`s at `i` and, when they are followed by `"`, returns
/// `(hash_count, quote_offset)` — the raw-string introducer after an `r`.
fn raw_string_intro(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    (j < b.len() && b[j] == b'"').then_some((j - i, j))
}

/// Lexes `src` into tokens and comments. Never panics: malformed input
/// degrades to best-effort tokens, which is the right trade for a linter
/// that runs over code `rustc` has already accepted.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let kind = match (b.get(i + 2), b.get(i + 3)) {
                    (Some(b'/'), Some(b'/')) => CommentKind::Plain,
                    (Some(b'/'), _) => CommentKind::DocOuter,
                    (Some(b'!'), _) => CommentKind::DocInner,
                    _ => CommentKind::Plain,
                };
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment { kind, start, end: i });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let kind = match b.get(i + 2) {
                    Some(b'*') if b.get(i + 3) != Some(&b'/') => CommentKind::DocOuter,
                    Some(b'!') => CommentKind::DocInner,
                    _ => CommentKind::Plain,
                };
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment { kind, start, end: i });
            }
            b'"' => {
                let start = i;
                i = scan_quoted(b, i, b'"');
                out.tokens.push(Token { kind: TokenKind::Str, start, end: i });
            }
            b'\'' => {
                let start = i;
                // Lifetime: 'ident not closed by another quote.
                let lifetime = b
                    .get(i + 1)
                    .is_some_and(|&n| is_ident_start(n))
                    && b.get(i + 2) != Some(&b'\'');
                if lifetime {
                    i += 2;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token { kind: TokenKind::Lifetime, start, end: i });
                } else {
                    i = scan_quoted(b, i, b'\'');
                    out.tokens.push(Token { kind: TokenKind::Char, start, end: i });
                }
            }
            b'r' | b'b' if {
                // String-literal prefixes: r"", r#""#, b"", b'', br"", br#""#.
                let n1 = b.get(i + 1).copied();
                match c {
                    b'r' => n1 == Some(b'"') || (n1 == Some(b'#') && raw_string_intro(b, i + 1).is_some()),
                    _ => matches!(n1, Some(b'"') | Some(b'\'')) || (n1 == Some(b'r')
                        && matches!(b.get(i + 2).copied(), Some(b'"') | Some(b'#'))
                        && (b.get(i + 2) == Some(&b'"') || raw_string_intro(b, i + 2).is_some())),
                }
            } =>
            {
                let start = i;
                let (kind, end) = match (c, b.get(i + 1).copied()) {
                    (b'r', _) => {
                        let (hashes, quote) = raw_string_intro(b, i + 1).unwrap_or((0, i + 1));
                        (TokenKind::Str, scan_raw_string(b, quote, hashes))
                    }
                    (b'b', Some(b'"')) => (TokenKind::Str, scan_quoted(b, i + 1, b'"')),
                    (b'b', Some(b'\'')) => (TokenKind::Char, scan_quoted(b, i + 1, b'\'')),
                    (b'b', Some(b'r')) => {
                        let (hashes, quote) = raw_string_intro(b, i + 2).unwrap_or((0, i + 2));
                        (TokenKind::Str, scan_raw_string(b, quote, hashes))
                    }
                    _ => (TokenKind::Str, i + 1),
                };
                i = end;
                out.tokens.push(Token { kind, start, end });
            }
            c if is_ident_start(c) => {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token { kind: TokenKind::Ident, start, end: i });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut seen_dot = false;
                i += 1;
                while i < b.len() {
                    if is_ident_continue(b[i]) {
                        i += 1;
                    } else if b[i] == b'.'
                        && !seen_dot
                        && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        // `1.5` is one number; `0..4` stops before the range.
                        seen_dot = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: TokenKind::Number, start, end: i });
            }
            _ => {
                // Single punctuation character; advance by the full UTF-8
                // character so multi-byte text cannot desynchronize spans.
                let width = src
                    .get(i..)
                    .and_then(|s| s.chars().next())
                    .map_or(1, char::len_utf8);
                out.tokens.push(Token { kind: TokenKind::Punct, start: i, end: i + width });
                i += width;
            }
        }
    }
    out
}

/// Parses an integer literal's value (`0x7f`, `255u8`, `1_000`), ignoring
/// any type suffix. Returns `None` for floats or malformed input.
pub fn int_literal_value(text: &str) -> Option<u128> {
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let (radix, digits) = match cleaned.as_bytes() {
        [b'0', b'x' | b'X', rest @ ..] => (16, rest),
        [b'0', b'o' | b'O', rest @ ..] => (8, rest),
        [b'0', b'b' | b'B', rest @ ..] => (2, rest),
        _ => (10, cleaned.as_bytes()),
    };
    let digits = std::str::from_utf8(digits).ok()?;
    // Strip a trailing type suffix (u8/i64/usize/...).
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    let (num, suffix) = digits.split_at(end);
    if num.is_empty() || !matches!(suffix, "" | "u8" | "u16" | "u32" | "u64" | "u128" | "usize" | "i8" | "i16" | "i32" | "i64" | "i128" | "isize") {
        return None;
    }
    u128::from_str_radix(num, radix).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<&str> {
        lex(src).tokens.iter().map(|t| &src[t.start..t.end]).collect()
    }

    #[test]
    fn code_inside_strings_and_comments_is_invisible() {
        let src = r##"
            // calls unwrap() in a comment
            /* block .unwrap() */
            /// doc: x.unwrap()
            let s = "call .unwrap() here";
            let r = r#"raw "quoted" .unwrap()"#;
            let c = '"';
            real.unwrap();
        "##;
        let toks = texts(src);
        let unwraps = toks.iter().filter(|t| **t == "unwrap").count();
        assert_eq!(unwraps, 1, "only the real call lexes as code: {toks:?}");
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let src = r##"let x = r#"embedded " quote"# ; after"##;
        let toks = texts(src);
        assert!(toks.contains(&"after"));
        assert!(toks.contains(&";"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'q'; }";
        let lexed = lex(src);
        let lifetimes =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let toks = texts("&frame[0..4]");
        assert!(toks.contains(&"0"));
        assert!(toks.contains(&"4"));
        assert!(!toks.iter().any(|t| t.contains("..")));
    }

    #[test]
    fn comment_kinds_are_distinguished() {
        let src = "//! inner\n/// outer\n// plain\n/** block doc */ fn x() {}";
        let lexed = lex(src);
        let kinds: Vec<CommentKind> = lexed.comments.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommentKind::DocInner,
                CommentKind::DocOuter,
                CommentKind::Plain,
                CommentKind::DocOuter
            ]
        );
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        let src = "/* outer /* inner */ still comment */ code";
        let toks = texts(src);
        assert_eq!(toks, vec!["code"]);
    }

    #[test]
    fn line_index_maps_spans() {
        let src = "ab\ncd\nef";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(src, 0), (1, 1));
        assert_eq!(idx.line_col(src, 4), (2, 2));
        assert_eq!(idx.line_text(src, 2), "cd");
        assert_eq!(idx.line_text(src, 9), "");
    }

    #[test]
    fn int_literals_parse_with_radix_and_suffix() {
        assert_eq!(int_literal_value("0x7f"), Some(0x7f));
        assert_eq!(int_literal_value("255u8"), Some(255));
        assert_eq!(int_literal_value("1_000"), Some(1000));
        assert_eq!(int_literal_value("0b1010"), Some(10));
        assert_eq!(int_literal_value("1.5"), None);
        assert_eq!(int_literal_value("xyz"), None);
    }

    #[test]
    fn byte_strings_and_byte_chars_lex_as_literals() {
        let lexed = lex(r#"let m = b"SDBT"; let c = b'\n'; let r = br"raw";"#);
        let strs = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).count();
        let chars = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count();
        assert_eq!(strs, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn multi_hash_raw_strings_ignore_shorter_closers() {
        let src = "let x = r##\"one \"# two\"## ; after";
        let lexed = lex(src);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("raw string token");
        assert_eq!(&src[s.start..s.end], "r##\"one \"# two\"##", "`\"#` must not close `r##`");
        assert!(texts(src).contains(&"after"));
    }

    #[test]
    fn raw_byte_strings_with_hashes_lex_as_one_literal() {
        let src = "let m = br#\"tag \" byte\"# ; done";
        let lexed = lex(src);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("raw byte string token");
        assert_eq!(&src[s.start..s.end], "br#\"tag \" byte\"#");
        assert!(texts(src).contains(&"done"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#match = r#struct + 1; tail";
        let lexed = lex(src);
        assert!(
            lexed.tokens.iter().all(|t| t.kind != TokenKind::Str),
            "`r#ident` must not open a raw string"
        );
        let toks = texts(src);
        assert!(toks.contains(&"match"));
        assert!(toks.contains(&"tail"));
    }

    #[test]
    fn unterminated_literals_degrade_without_panicking() {
        for src in
            ["let s = \"never ends", "let r = r#\"open", "/* open comment", "let c = '"]
        {
            let lexed = lex(src);
            assert!(
                !lexed.tokens.is_empty() || !lexed.comments.is_empty(),
                "{src:?} lexes to something"
            );
        }
    }

    #[test]
    fn static_anonymous_and_label_lifetimes_all_lex_as_lifetimes() {
        let src = "fn f(x: &'static str, y: &'_ u8) { 'outer: loop { break 'outer; } }";
        let lexed = lex(src);
        let lifetimes: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| &src[t.start..t.end])
            .collect();
        assert_eq!(lifetimes, vec!["'static", "'_", "'outer", "'outer"]);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Char));
    }

    #[test]
    fn escaped_char_literals_are_not_lifetimes() {
        let src = r"let q = '\''; let b = '\\'; let n = '\n';";
        let lexed = lex(src);
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(), 3);
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 0);
    }

    #[test]
    fn block_comments_containing_quotes_and_markers_close_at_depth() {
        let src = "/* \" // /* 'nested */ \" */ code";
        assert_eq!(texts(src), vec!["code"]);
    }

    #[test]
    fn multibyte_text_does_not_desynchronize_spans() {
        let src = "// caché — naïve\nlet s = \"héllo ≤ wörld\"; done";
        let toks = texts(src);
        assert!(toks.contains(&"let"), "{toks:?}");
        assert!(toks.contains(&"done"), "{toks:?}");
        let lexed = lex(src);
        for t in &lexed.tokens {
            assert!(src.get(t.start..t.end).is_some(), "span off a char boundary");
        }
    }
}
