//! SARIF 2.1.0 emitter: findings as GitHub code-scanning annotations.
//!
//! SARIF (Static Analysis Results Interchange Format) is the schema
//! GitHub's `upload-sarif` action ingests; once uploaded, each finding
//! becomes an inline annotation on the offending line of the PR diff.
//! The document is the minimal valid subset: one `run`, a `tool.driver`
//! carrying the full rule table (ids, short descriptions, help text),
//! and one `result` per unsuppressed finding with a `physicalLocation`
//! region. Suppressed findings are *not* emitted — the audit trail for
//! those lives in the JSON report; code scanning only sees what fails.
//!
//! Ordering mirrors the report (path, line, column, rule), so the SARIF
//! document is as byte-deterministic as every other output.

use sdbp_engine::json::JsonWriter;

use crate::report::Report;
use crate::rules::RuleInfo;

/// The SARIF version this emitter targets.
pub const SARIF_VERSION: &str = "2.1.0";

/// The schema URI embedded in the document.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders `report` as a SARIF 2.1.0 document.
#[must_use]
pub fn render_sarif(report: &Report, rules: &[RuleInfo]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("$schema").string(SARIF_SCHEMA);
    w.key("version").string(SARIF_VERSION);
    w.key("runs").begin_array();
    w.begin_object();

    w.key("tool").begin_object();
    w.key("driver").begin_object();
    w.key("name").string("sdbp-analyze");
    w.key("informationUri").string("https://github.com/sdbp-repro/sdbp-repro");
    w.key("rules").begin_array();
    for r in rules {
        w.begin_object();
        w.key("id").string(r.id);
        w.key("shortDescription").begin_object();
        w.key("text").string(r.summary);
        w.end_object();
        w.key("defaultConfiguration").begin_object();
        w.key("level").string("error");
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object(); // driver
    w.end_object(); // tool

    w.key("results").begin_array();
    for f in &report.findings {
        let rule_index = rules.iter().position(|r| r.id == f.rule);
        w.begin_object();
        w.key("ruleId").string(f.rule);
        if let Some(idx) = rule_index {
            w.key("ruleIndex").uint(idx as u64);
        }
        w.key("level").string("error");
        w.key("message").begin_object();
        w.key("text").string(&f.message);
        w.end_object();
        w.key("locations").begin_array();
        w.begin_object();
        w.key("physicalLocation").begin_object();
        w.key("artifactLocation").begin_object();
        w.key("uri").string(&f.path);
        w.key("uriBaseId").string("%SRCROOT%");
        w.end_object();
        w.key("region").begin_object();
        w.key("startLine").uint(u64::from(f.line));
        w.key("startColumn").uint(u64::from(f.col));
        w.end_object();
        w.end_object(); // physicalLocation
        w.end_object(); // location
        w.end_array();
        w.end_object(); // result
    }
    w.end_array();

    w.end_object(); // run
    w.end_array();
    w.end_object();
    let mut doc = w.finish();
    doc.push('\n');
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{all_rule_info, Finding};

    fn sample_report() -> Report {
        let mut report = Report { files_scanned: 2, ..Report::default() };
        report.findings.push(Finding {
            rule: "no-panic-paths",
            path: "crates/traceio/src/reader.rs".to_owned(),
            line: 14,
            col: 9,
            message: "`unwrap()` on an I/O path \"quoted\"".to_owned(),
            snippet: "let x = r.unwrap();".to_owned(),
        });
        report
    }

    #[test]
    fn document_carries_schema_version_rules_and_results() {
        let doc = render_sarif(&sample_report(), &all_rule_info());
        assert!(doc.contains("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"ruleId\":\"no-panic-paths\""));
        assert!(doc.contains("\"startLine\":14"));
        assert!(doc.contains("\"startColumn\":9"));
        assert!(doc.contains("\"uri\":\"crates/traceio/src/reader.rs\""));
        // Message text is escaped, not raw.
        assert!(doc.contains("\\\"quoted\\\""));
        // Every rule is declared in the driver table.
        for r in all_rule_info() {
            assert!(doc.contains(&format!("\"id\":\"{}\"", r.id)), "missing rule {}", r.id);
        }
    }

    #[test]
    fn rule_index_points_into_the_driver_table() {
        let rules = all_rule_info();
        let doc = render_sarif(&sample_report(), &rules);
        let idx = rules.iter().position(|r| r.id == "no-panic-paths").expect("rule exists");
        assert!(doc.contains(&format!("\"ruleIndex\":{idx}")));
    }

    #[test]
    fn clean_report_yields_empty_results() {
        let doc = render_sarif(&Report::default(), &all_rule_info());
        assert!(doc.contains("\"results\":[]"), "{doc}");
    }

    #[test]
    fn output_is_deterministic() {
        let a = render_sarif(&sample_report(), &all_rule_info());
        let b = render_sarif(&sample_report(), &all_rule_info());
        assert_eq!(a, b);
    }
}
