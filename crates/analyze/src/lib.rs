//! `sdbp-analyze`: a workspace invariant linter for the SDBP
//! reproduction.
//!
//! The simulator's correctness claims rest on invariants the compiler
//! does not check: determinism (same trace + config → byte-identical
//! results), panic-freedom on I/O paths, and lossless trace encoding.
//! Each is easy to break with one innocuous-looking line — a `HashMap`
//! iteration in a report, an `unwrap` on a short read, an `as u32` on a
//! length. This crate walks every `.rs` file in the workspace with a
//! hand-rolled, span-tracking lexer (the workspace is std-only, so no
//! `syn`) and enforces six such invariants as lint rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-paths` | trace I/O and recording never panic; errors propagate |
//! | `deterministic-iteration` | no `HashMap`/`HashSet` in aggregation/report paths |
//! | `no-wallclock-in-sim` | results are a pure function of trace + config |
//! | `lossless-codec-casts` | no truncating `as` casts in the `.sdbt` codec |
//! | `seed-discipline` | derived streams use `Rng64::fork`, not seed arithmetic |
//! | `pub-api-docs` | every `pub` item in library code is documented |
//!
//! Findings are span-accurate (`file:line:col`) and rendered both
//! human-readable and as JSON (`target/analyze-report.json`). Two escape
//! hatches exist, both requiring a written justification: [`config`]
//! (`analyze.toml` `[[allow]]` entries) and per-line
//! `// sdbp-allow(rule): reason` escapes. The binary exits nonzero on
//! any unsuppressed finding, so CI can gate on it.

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;
pub mod workspace;

use std::path::PathBuf;

use config::Config;
use report::{render_human, render_json};
use rules::all_rules;
use workspace::{analyze_workspace, find_root};

/// Parsed command-line options.
#[derive(Debug)]
struct Options {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json_out: Option<PathBuf>,
    list_rules: bool,
    quiet: bool,
}

const USAGE: &str = "usage: sdbp-analyze [--root DIR] [--config FILE] [--json FILE] \
[--list-rules] [--quiet]

Scans every .rs file in the workspace for invariant violations.

  --root DIR     workspace root (default: nearest [workspace] Cargo.toml)
  --config FILE  allowlist (default: <root>/analyze.toml)
  --json FILE    JSON report path (default: <root>/target/analyze-report.json)
  --list-rules   print the rule table and exit
  --quiet        suppress per-finding output; print only the summary line

exit status: 0 clean, 1 findings, 2 usage or I/O error";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        config: None,
        json_out: None,
        list_rules: false,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root =
                    Some(it.next().ok_or("--root needs a directory argument")?.into());
            }
            "--config" => {
                opts.config = Some(it.next().ok_or("--config needs a file argument")?.into());
            }
            "--json" => {
                opts.json_out = Some(it.next().ok_or("--json needs a file argument")?.into());
            }
            "--list-rules" => opts.list_rules = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Runs the linter CLI; returns the process exit code (0 clean,
/// 1 findings, 2 error).
#[must_use]
pub fn run_cli(args: &[String]) -> i32 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let rules = all_rules();
    if opts.list_rules {
        for r in &rules {
            println!("{:<24} {}", r.id(), r.summary());
        }
        return 0;
    }
    match run_scan(&opts) {
        Ok(clean) => i32::from(!clean),
        Err(msg) => {
            eprintln!("sdbp-analyze: {msg}");
            2
        }
    }
}

/// Performs the scan described by `opts`; returns whether the tree is
/// clean.
fn run_scan(opts: &Options) -> Result<bool, String> {
    let rules = all_rules();
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => find_root(&std::env::current_dir().map_err(|e| format!("cwd: {e}"))?)?,
    };
    let ids = rules::rule_ids();
    let config_path = opts.config.clone().unwrap_or_else(|| root.join("analyze.toml"));
    let config = Config::load(&config_path, &ids)?;
    let report = analyze_workspace(&root, &rules, &config)?;

    let json_path = opts
        .json_out
        .clone()
        .unwrap_or_else(|| root.join("target").join("analyze-report.json"));
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(&json_path, render_json(&report, &rules))
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    let human = render_human(&report, &rules);
    if opts.quiet {
        if let Some(summary) = human.lines().last() {
            println!("{summary}");
        }
    } else {
        print!("{human}");
    }
    Ok(report.findings.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn unknown_flags_and_missing_values_are_usage_errors() {
        assert_eq!(run_cli(&args(&["--frobnicate"])), 2);
        assert_eq!(run_cli(&args(&["--root"])), 2);
        assert!(parse_args(&args(&["--help"])).is_err());
    }

    #[test]
    fn list_rules_exits_clean() {
        assert_eq!(run_cli(&args(&["--list-rules"])), 0);
    }

    #[test]
    fn scan_of_clean_and_dirty_trees_yields_exit_codes() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-cli-{}", std::process::id()));
        let src_dir = tmp.join("crates/traceio/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        std::fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        std::fs::write(src_dir.join("clean.rs"), "fn f() -> u32 { 0 }\n").expect("write");
        let root = tmp.to_string_lossy().into_owned();
        assert_eq!(run_cli(&args(&["--root", &root, "--quiet"])), 0);

        std::fs::write(src_dir.join("dirty.rs"), "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n")
            .expect("write");
        assert_eq!(run_cli(&args(&["--root", &root, "--quiet"])), 1);
        let json = std::fs::read_to_string(tmp.join("target/analyze-report.json"))
            .expect("report written");
        assert!(json.contains("\"clean\":false"));
        std::fs::remove_dir_all(&tmp).expect("cleanup");
    }
}
