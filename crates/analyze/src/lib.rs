//! `sdbp-analyze`: a workspace-graph invariant linter for the SDBP
//! reproduction.
//!
//! The simulator's correctness claims rest on invariants the compiler
//! does not check: determinism (same trace + config → byte-identical
//! results), panic-freedom on I/O paths, lossless trace encoding — and,
//! since PR 8, *cross-file contracts*: every wire variant must have an
//! encode arm, a decode arm, and a handler; every registered policy
//! must be gated by the golden fixture and the sampling smoke test; no
//! `Result` may be silently discarded on a serve path. This crate walks
//! every `.rs` file in the workspace with a hand-rolled, span-tracking
//! lexer and item parser (the workspace is std-only, so no `syn`),
//! joins the per-file facts into a workspace graph, and enforces the
//! invariants as lint rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-paths` | trace I/O and recording never panic; errors propagate |
//! | `deterministic-iteration` | no `HashMap`/`HashSet` in aggregation/report paths |
//! | `no-wallclock-in-sim` | results are a pure function of trace + config |
//! | `lossless-codec-casts` | no truncating `as` casts in the `.sdbt` codec |
//! | `seed-discipline` | derived streams use `Rng64::fork`, not seed arithmetic |
//! | `pub-api-docs` | every `pub` item in library code is documented |
//! | `flat-metadata` | per-line replacement metadata stays flat |
//! | `mutex-discipline` | no lock guard held across a blocking call |
//! | `result-discipline` | no silently discarded `Result` in non-test code |
//! | `wire-exhaustive` | wire enum variants encode, decode, and are handled |
//! | `registry-coverage` | registered policies are gated by golden + smoke |
//!
//! Rules apply workspace-wide by default; `analyze.toml` `[[exempt]]`
//! entries opt a path out with a written reason, `[[allow]]` entries
//! suppress individual findings, and `// sdbp-allow(rule): reason`
//! escapes do the same in-line. Findings are span-accurate
//! (`file:line:col`) and rendered human-readable, as JSON
//! (`target/analyze-report.json`, path overridable via `--report` /
//! `SDBP_ANALYZE_REPORT`), and as SARIF 2.1.0 (`--sarif`) for GitHub
//! code-scanning upload. Per-file analysis fans out over the
//! `sdbp-engine` pool (`--jobs N`, byte-identical to `--serial`) and is
//! reused across runs through a content-hash cache
//! (`target/analyze-cache.json`), so a warm rerun on an unchanged tree
//! completes in well under a second. The binary exits nonzero on any
//! unsuppressed finding, so CI can gate on it.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod workspace;

use std::path::PathBuf;

use config::Config;
use report::{render_human, render_json};
use rules::all_rule_info;
use workspace::{analyze_workspace, find_root, ScanOptions};

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    report_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    bench_out: Option<PathBuf>,
    jobs: Option<usize>,
    serial: bool,
    no_cache: bool,
    prune: bool,
    write: bool,
    list_rules: bool,
    quiet: bool,
}

const USAGE: &str = "usage: sdbp-analyze [--root DIR] [--config FILE] [--report FILE] \
[--sarif FILE] [--jobs N | --serial] [--no-cache] [--bench FILE] [--prune [--write]] \
[--list-rules] [--quiet]

Scans every .rs file in the workspace for invariant violations.

  --root DIR     workspace root (default: nearest [workspace] Cargo.toml)
  --config FILE  policy file (default: <root>/analyze.toml)
  --report FILE  JSON report path (default: $SDBP_ANALYZE_REPORT, then
                 <root>/target/analyze-report.json); --json is an alias
  --sarif FILE   also write a SARIF 2.1.0 document for code scanning
  --jobs N       per-file analysis worker threads (default: one per core)
  --serial       single-threaded reference path (same output as --jobs N)
  --no-cache     ignore and do not write target/analyze-cache.json
  --bench FILE   time a cold and a warm scan, write the comparison JSON
  --prune        list stale analyze.toml [[allow]] entries; with --write,
                 remove them from the file
  --list-rules   print the rule table and exit
  --quiet        suppress per-finding output; print only the summary line

exit status: 0 clean, 1 findings, 2 usage or I/O error";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root =
                    Some(it.next().ok_or("--root needs a directory argument")?.into());
            }
            "--config" => {
                opts.config = Some(it.next().ok_or("--config needs a file argument")?.into());
            }
            "--report" | "--json" => {
                opts.report_out =
                    Some(it.next().ok_or("--report needs a file argument")?.into());
            }
            "--sarif" => {
                opts.sarif_out = Some(it.next().ok_or("--sarif needs a file argument")?.into());
            }
            "--bench" => {
                opts.bench_out = Some(it.next().ok_or("--bench needs a file argument")?.into());
            }
            "--jobs" => {
                let n = it.next().ok_or("--jobs needs a worker count")?;
                opts.jobs =
                    Some(n.parse::<usize>().map_err(|_| format!("bad --jobs value `{n}`"))?);
            }
            "--serial" => opts.serial = true,
            "--no-cache" => opts.no_cache = true,
            "--prune" => opts.prune = true,
            "--write" => opts.write = true,
            "--list-rules" => opts.list_rules = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if opts.serial && opts.jobs.is_some() {
        return Err("--serial and --jobs are mutually exclusive".to_owned());
    }
    if opts.write && !opts.prune {
        return Err("--write only makes sense with --prune".to_owned());
    }
    Ok(opts)
}

/// Runs the linter CLI; returns the process exit code (0 clean,
/// 1 findings, 2 error).
#[must_use]
pub fn run_cli(args: &[String]) -> i32 {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    if opts.list_rules {
        for r in all_rule_info() {
            println!("{:<24} {}", r.id, r.summary);
        }
        return 0;
    }
    let run = if opts.prune { run_prune(&opts) } else { run_scan(&opts) };
    match run {
        Ok(clean) => i32::from(!clean),
        Err(msg) => {
            eprintln!("sdbp-analyze: {msg}");
            2
        }
    }
}

/// Resolved scan environment shared by scan and prune modes.
struct Env {
    root: PathBuf,
    config_path: PathBuf,
    config: Config,
    scan: ScanOptions,
}

fn resolve(opts: &Options) -> Result<Env, String> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => find_root(&std::env::current_dir().map_err(|e| format!("cwd: {e}"))?)?,
    };
    let ids = rules::rule_ids();
    let config_path = opts.config.clone().unwrap_or_else(|| root.join("analyze.toml"));
    let config = Config::load(&config_path, &ids)?;
    let jobs = if opts.serial {
        1
    } else {
        opts.jobs.unwrap_or_else(|| sdbp_engine::Parallelism::Auto.workers())
    };
    let cache_path =
        (!opts.no_cache).then(|| root.join("target").join("analyze-cache.json"));
    Ok(Env { root, config_path, config, scan: ScanOptions { jobs, cache_path } })
}

/// Writes `content` to `path`, creating parent directories.
fn write_out(path: &PathBuf, content: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Performs the scan described by `opts`; returns whether the tree is
/// clean.
fn run_scan(opts: &Options) -> Result<bool, String> {
    let env = resolve(opts)?;
    let rules = all_rule_info();

    if let Some(bench_path) = &opts.bench_out {
        // Cold: purge the cache first. Warm: immediately rescan.
        if let Some(cache) = &env.scan.cache_path {
            if cache.exists() {
                std::fs::remove_file(cache)
                    .map_err(|e| format!("cannot purge {}: {e}", cache.display()))?;
            }
        }
        // Timing the analyzer itself is the point of --bench: the wall
        // times land in BENCH_analyze.json, not in any simulation result.
        // sdbp-allow(no-wallclock-in-sim): --bench measures analyzer wall time as its output
        let t0 = std::time::Instant::now();
        let cold = analyze_workspace(&env.root, &env.config, &env.scan)?;
        let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
        // sdbp-allow(no-wallclock-in-sim): --bench measures analyzer wall time as its output
        let t1 = std::time::Instant::now();
        let warm = analyze_workspace(&env.root, &env.config, &env.scan)?;
        let warm_ms = t1.elapsed().as_secs_f64() * 1e3;

        let mut w = sdbp_engine::json::JsonWriter::new();
        w.begin_object();
        w.key("schema").string("sdbp-analyze-bench/v1");
        w.key("files").uint(cold.files_scanned as u64);
        w.key("jobs").uint(env.scan.jobs as u64);
        w.key("cold_ms").float(cold_ms);
        w.key("warm_ms").float(warm_ms);
        w.key("warm_cache_hits").uint(warm.cache_hits as u64);
        w.key("speedup").float(if warm_ms > 0.0 { cold_ms / warm_ms } else { 0.0 });
        w.end_object();
        let mut doc = w.finish();
        doc.push('\n');
        write_out(bench_path, &doc)?;
        println!(
            "analyze-bench: cold {cold_ms:.1} ms, warm {warm_ms:.1} ms ({:.1}x, {} files, {} jobs)",
            if warm_ms > 0.0 { cold_ms / warm_ms } else { 0.0 },
            warm.files_scanned,
            env.scan.jobs
        );
        return finish_scan(opts, &env, warm, &rules);
    }

    let report = analyze_workspace(&env.root, &env.config, &env.scan)?;
    finish_scan(opts, &env, report, &rules)
}

/// Writes reports and prints the human rendering; returns cleanliness.
fn finish_scan(
    opts: &Options,
    env: &Env,
    report: report::Report,
    rules: &[rules::RuleInfo],
) -> Result<bool, String> {
    let report_path = opts
        .report_out
        .clone()
        .or_else(|| std::env::var_os("SDBP_ANALYZE_REPORT").map(PathBuf::from))
        .unwrap_or_else(|| env.root.join("target").join("analyze-report.json"));
    write_out(&report_path, &render_json(&report, rules))?;
    if let Some(sarif_path) = &opts.sarif_out {
        write_out(sarif_path, &sarif::render_sarif(&report, rules))?;
    }

    let human = render_human(&report, rules);
    if opts.quiet {
        if let Some(summary) = human.lines().last() {
            println!("{summary}");
        }
    } else {
        print!("{human}");
    }
    Ok(report.findings.is_empty())
}

/// `--prune`: report (and with `--write`, remove) `[[allow]]` entries
/// that no longer suppress anything. Returns `true` when no stale
/// entries exist (prune does not gate on findings).
fn run_prune(opts: &Options) -> Result<bool, String> {
    let env = resolve(opts)?;
    let report = analyze_workspace(&env.root, &env.config, &env.scan)?;
    let stale: Vec<&config::AllowEntry> = env
        .config
        .allows
        .iter()
        .filter(|entry| {
            !report.allowed.iter().any(|a| {
                a.source == "analyze.toml"
                    && a.finding.rule == entry.rule
                    && (a.finding.path == entry.path
                        || a.finding.path.starts_with(&entry.path))
            })
        })
        .collect();
    if stale.is_empty() {
        println!("prune: no stale [[allow]] entries in {}", env.config_path.display());
        return Ok(true);
    }
    for entry in &stale {
        println!(
            "prune: stale [[allow]] {} at {} ({})",
            entry.rule, entry.path, entry.reason
        );
    }
    if opts.write {
        let text = std::fs::read_to_string(&env.config_path)
            .map_err(|e| format!("cannot read {}: {e}", env.config_path.display()))?;
        let pruned = prune_config_text(
            &text,
            &stale.iter().map(|e| (e.rule.as_str(), e.path.as_str())).collect::<Vec<_>>(),
        );
        std::fs::write(&env.config_path, pruned)
            .map_err(|e| format!("cannot write {}: {e}", env.config_path.display()))?;
        println!(
            "prune: removed {} entr{} from {}",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" },
            env.config_path.display()
        );
    } else {
        println!("prune: rerun with --write to remove");
    }
    Ok(false)
}

/// Removes the `[[allow]]` blocks matching `stale` (rule, path) pairs
/// from the TOML text, taking each block's immediately-preceding
/// comment lines with it.
fn prune_config_text(text: &str, stale: &[(&str, &str)]) -> String {
    let lines: Vec<&str> = text.lines().collect();
    // Block = [start, end) line range for each [[allow]]/[[exempt]] header.
    let mut keep = vec![true; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim() != "[[allow]]" {
            i += 1;
            continue;
        }
        let header = i;
        let mut end = i + 1;
        let mut rule = "";
        let mut path = "";
        while end < lines.len() && !lines[end].trim().starts_with("[[") {
            let t = lines[end].trim();
            if let Some(v) = t.strip_prefix("rule") {
                rule = v.trim_start_matches(['=', ' ']).trim_matches('"');
            } else if let Some(v) = t.strip_prefix("path") {
                path = v.trim_start_matches(['=', ' ']).trim_matches('"');
            }
            end += 1;
        }
        if stale.contains(&(rule, path)) {
            // Take immediately-preceding comment lines with the block.
            let mut start = header;
            while start > 0 && lines[start - 1].trim_start().starts_with('#') {
                start -= 1;
            }
            // And one preceding blank separator, if present.
            if start > 0 && lines[start - 1].trim().is_empty() {
                start -= 1;
            }
            // Trailing blank lines inside the block range stay removed
            // with it (they separate it from the next block).
            for flag in keep.iter_mut().take(end).skip(start) {
                *flag = false;
            }
        }
        i = end;
    }
    let mut out = String::new();
    for (line, flag) in lines.iter().zip(&keep) {
        if *flag {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn unknown_flags_and_missing_values_are_usage_errors() {
        assert_eq!(run_cli(&args(&["--frobnicate"])), 2);
        assert_eq!(run_cli(&args(&["--root"])), 2);
        assert_eq!(run_cli(&args(&["--jobs", "zero?"])), 2);
        assert_eq!(run_cli(&args(&["--serial", "--jobs", "4"])), 2);
        assert_eq!(run_cli(&args(&["--write"])), 2, "--write needs --prune");
        assert!(parse_args(&args(&["--help"])).is_err());
    }

    #[test]
    fn list_rules_exits_clean() {
        assert_eq!(run_cli(&args(&["--list-rules"])), 0);
    }

    #[test]
    fn scan_of_clean_and_dirty_trees_yields_exit_codes() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-cli-{}", std::process::id()));
        let src_dir = tmp.join("crates/traceio/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        std::fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        std::fs::write(src_dir.join("clean.rs"), "fn f() -> u32 { 0 }\n").expect("write");
        let root = tmp.to_string_lossy().into_owned();
        assert_eq!(run_cli(&args(&["--root", &root, "--quiet"])), 0);

        std::fs::write(src_dir.join("dirty.rs"), "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n")
            .expect("write");
        assert_eq!(run_cli(&args(&["--root", &root, "--quiet"])), 1);
        let json = std::fs::read_to_string(tmp.join("target/analyze-report.json"))
            .expect("report written");
        assert!(json.contains("\"clean\":false"));
        std::fs::remove_dir_all(&tmp).expect("cleanup");
    }

    #[test]
    fn report_flag_overrides_default_path() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-rpt-{}", std::process::id()));
        let src_dir = tmp.join("crates/traceio/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        std::fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        std::fs::write(src_dir.join("clean.rs"), "fn f() -> u32 { 0 }\n").expect("write");
        let root = tmp.to_string_lossy().into_owned();
        let custom = tmp.join("out/custom-report.json");
        let custom_arg = custom.to_string_lossy().into_owned();
        assert_eq!(
            run_cli(&args(&["--root", &root, "--quiet", "--report", &custom_arg])),
            0
        );
        assert!(custom.is_file(), "--report path honored");
        assert!(
            !tmp.join("target/analyze-report.json").exists(),
            "default path not written when --report is given"
        );
        std::fs::remove_dir_all(&tmp).expect("cleanup");
    }

    #[test]
    fn sarif_flag_writes_a_sarif_document() {
        let tmp = std::env::temp_dir().join(format!("sdbp-analyze-sarif-{}", std::process::id()));
        let src_dir = tmp.join("crates/traceio/src");
        std::fs::create_dir_all(&src_dir).expect("mkdir");
        std::fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("manifest");
        std::fs::write(src_dir.join("dirty.rs"), "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n")
            .expect("write");
        let root = tmp.to_string_lossy().into_owned();
        let sarif = tmp.join("out/findings.sarif");
        let sarif_arg = sarif.to_string_lossy().into_owned();
        assert_eq!(run_cli(&args(&["--root", &root, "--quiet", "--sarif", &sarif_arg])), 1);
        let doc = std::fs::read_to_string(&sarif).expect("sarif written");
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("no-panic-paths"));
        std::fs::remove_dir_all(&tmp).expect("cleanup");
    }

    #[test]
    fn prune_text_removes_stale_blocks_with_their_comments() {
        let text = "# top-of-file header\n\n\
                    # first entry comment\n[[allow]]\nrule = \"a\"\npath = \"p1\"\nreason = \"r\"\n\n\
                    [[allow]]\nrule = \"b\"\npath = \"p2\"\nreason = \"r\"\n";
        let pruned = prune_config_text(text, &[("a", "p1")]);
        assert!(!pruned.contains("first entry comment"), "{pruned}");
        assert!(!pruned.contains("p1"), "{pruned}");
        assert!(pruned.contains("top-of-file header"), "{pruned}");
        assert!(pruned.contains("p2"), "{pruned}");
        let unchanged = prune_config_text(text, &[("zzz", "nope")]);
        assert_eq!(unchanged.trim_end(), text.trim_end());
    }
}
