//! The checked-in policy file (`analyze.toml`): the *audited* exceptions
//! to the rule set.
//!
//! Two entry kinds exist, with deliberately different weights:
//!
//! - `[[allow]]` suppresses individual findings under a path prefix —
//!   the finding is still computed and reported in the audit section.
//! - `[[exempt]]` opts a path out of a rule entirely. Rules apply
//!   workspace-wide by default (new crates are covered the day they are
//!   created); an exempt is the explicit, justified statement that a
//!   rule's invariant does not govern that code at all (e.g. wall-clock
//!   time in the bench harness, whose *output* is wall-clock time).
//!
//! The format is a deliberately small TOML subset — array headers with
//! `key = "value"` string pairs — parsed by hand because the workspace
//! is std-only. Every entry must carry a `reason`; a line without a
//! justification is itself a config error, so the audit trail can never
//! silently erode. Unknown rule ids are rejected too, which catches
//! stale entries when rules are renamed.
//!
//! ```text
//! # analyze.toml
//! [[exempt]]
//! rule = "no-wallclock-in-sim"
//! path = "crates/bench/src"
//! reason = "measurement harness; wall-clock time is its output"
//! ```

use std::path::Path;

/// One audited exception: `rule` is permitted under path prefix `path`
/// because `reason`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllowEntry {
    /// Rule id the exception applies to.
    pub rule: String,
    /// Workspace-relative path prefix (a file or a directory).
    pub path: String,
    /// Why this exception is sound. Required.
    pub reason: String,
}

/// The parsed policy file.
#[derive(Clone, Default, Debug)]
pub struct Config {
    /// Audited finding suppressions, in file order.
    pub allows: Vec<AllowEntry>,
    /// Audited rule opt-outs, in file order.
    pub exempts: Vec<AllowEntry>,
}

impl Config {
    /// Parses `text`, validating every entry against `known_rules`.
    ///
    /// # Errors
    ///
    /// Malformed lines, entries missing `rule`/`path`/`reason`, or
    /// entries naming unknown rules; messages carry the line number.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Config, String> {
        let mut cfg = Config::default();
        // (entry, header line, is_exempt)
        let mut current: Option<(AllowEntry, usize, bool)> = None;
        let finish =
            |cfg: &mut Config, cur: (AllowEntry, usize, bool)| -> Result<(), String> {
                let is_exempt = cur.2;
                let entry = finish_entry((cur.0, cur.1), known_rules)?;
                if is_exempt {
                    cfg.exempts.push(entry);
                } else {
                    cfg.allows.push(entry);
                }
                Ok(())
            };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" || line == "[[exempt]]" {
                if let Some(cur) = current.take() {
                    finish(&mut cfg, cur)?;
                }
                current = Some((
                    AllowEntry { rule: String::new(), path: String::new(), reason: String::new() },
                    lineno,
                    line == "[[exempt]]",
                ));
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(format!("analyze.toml:{lineno}: cannot parse `{line}`"));
            };
            let Some((entry, _, _)) = current.as_mut() else {
                return Err(format!(
                    "analyze.toml:{lineno}: `{key}` outside an [[allow]]/[[exempt]] entry"
                ));
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(format!("analyze.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(cur) = current.take() {
            finish(&mut cfg, cur)?;
        }
        Ok(cfg)
    }

    /// Loads and parses `path`; a missing file is an empty config (the
    /// tool works out of the box on a clean tree).
    ///
    /// # Errors
    ///
    /// Unreadable files or parse failures.
    pub fn load(path: &Path, known_rules: &[&str]) -> Result<Config, String> {
        if !path.exists() {
            return Ok(Config::default());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text, known_rules)
    }

    /// The entry allowing `rule` at `path`, if any.
    pub fn allows(&self, rule: &str, path: &str) -> Option<&AllowEntry> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (path == a.path || path.starts_with(a.path.as_str())))
    }

    /// The entry exempting `path` from `rule`, if any.
    pub fn exempts(&self, rule: &str, path: &str) -> Option<&AllowEntry> {
        self.exempts
            .iter()
            .find(|a| a.rule == rule && (path == a.path || path.starts_with(a.path.as_str())))
    }
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // The subset forbids embedded quotes, so no unescaping is needed.
    if inner.contains('"') {
        return None;
    }
    Some((key.trim(), inner.to_owned()))
}

/// Validates a completed entry.
fn finish_entry(
    (entry, lineno): (AllowEntry, usize),
    known_rules: &[&str],
) -> Result<AllowEntry, String> {
    if entry.rule.is_empty() || entry.path.is_empty() {
        return Err(format!(
            "analyze.toml:{lineno}: [[allow]] entry needs both `rule` and `path`"
        ));
    }
    if entry.reason.is_empty() {
        return Err(format!(
            "analyze.toml:{lineno}: [[allow]] for `{}` at `{}` has no `reason` — \
             every exception must be justified",
            entry.rule, entry.path
        ));
    }
    if !known_rules.contains(&entry.rule.as_str()) {
        return Err(format!(
            "analyze.toml:{lineno}: unknown rule `{}` (known: {})",
            entry.rule,
            known_rules.join(", ")
        ));
    }
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["no-panic-paths", "no-wallclock-in-sim"];

    #[test]
    fn parses_entries_and_matches_prefixes() {
        let text = "# comment\n\n[[allow]]\nrule = \"no-wallclock-in-sim\"\n\
                    path = \"crates/bench/src\"\nreason = \"measurement harness\"\n";
        let cfg = Config::parse(text, RULES).expect("parses");
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.allows("no-wallclock-in-sim", "crates/bench/src/micro.rs").is_some());
        assert!(cfg.allows("no-wallclock-in-sim", "crates/cache/src/lru.rs").is_none());
        assert!(cfg.allows("no-panic-paths", "crates/bench/src/micro.rs").is_none());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let text = "[[allow]]\nrule = \"no-panic-paths\"\npath = \"crates/x\"\n";
        let err = Config::parse(text, RULES).expect_err("must fail");
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let text = "[[allow]]\nrule = \"no-such-rule\"\npath = \"x\"\nreason = \"y\"\n";
        let err = Config::parse(text, RULES).expect_err("must fail");
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn stray_keys_and_garbage_are_rejected() {
        assert!(Config::parse("rule = \"no-panic-paths\"", RULES).is_err());
        assert!(Config::parse("[[allow]]\nnot a kv line", RULES).is_err());
        assert!(Config::parse("[[allow]]\ncolor = \"red\"", RULES).is_err());
    }

    #[test]
    fn empty_and_comment_only_configs_are_valid() {
        assert!(Config::parse("", RULES).expect("empty ok").allows.is_empty());
        assert!(Config::parse("# nothing\n", RULES).expect("ok").allows.is_empty());
    }

    #[test]
    fn exempt_entries_parse_and_match_separately_from_allows() {
        let text = "[[exempt]]\nrule = \"no-wallclock-in-sim\"\n\
                    path = \"crates/bench/src\"\nreason = \"wall time is the output\"\n\
                    [[allow]]\nrule = \"no-panic-paths\"\npath = \"crates/engine/src/\"\n\
                    reason = \"poisoning\"\n";
        let cfg = Config::parse(text, RULES).expect("parses");
        assert_eq!(cfg.exempts.len(), 1);
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.exempts("no-wallclock-in-sim", "crates/bench/src/micro.rs").is_some());
        assert!(cfg.exempts("no-panic-paths", "crates/engine/src/pool.rs").is_none());
        assert!(cfg.allows("no-panic-paths", "crates/engine/src/pool.rs").is_some());
    }

    #[test]
    fn exempt_without_reason_is_rejected() {
        let text = "[[exempt]]\nrule = \"no-panic-paths\"\npath = \"crates/x\"\n";
        let err = Config::parse(text, RULES).expect_err("must fail");
        assert!(err.contains("reason"), "{err}");
    }
}
