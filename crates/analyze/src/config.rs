//! The checked-in allowlist (`analyze.toml`): the *audited* exceptions to
//! the rule set.
//!
//! The format is a deliberately small TOML subset — `[[allow]]` array
//! headers with `key = "value"` string pairs — parsed by hand because
//! the workspace is std-only. Every entry must carry a `reason`; an
//! allowlist line without a justification is itself a config error, so
//! the audit trail can never silently erode. Unknown rule ids are
//! rejected too, which catches stale entries when rules are renamed.
//!
//! ```text
//! # analyze.toml
//! [[allow]]
//! rule = "no-wallclock-in-sim"
//! path = "crates/bench/src"
//! reason = "measurement harness; wall-clock time is its output"
//! ```

use std::path::Path;

/// One audited exception: `rule` is permitted under path prefix `path`
/// because `reason`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AllowEntry {
    /// Rule id the exception applies to.
    pub rule: String,
    /// Workspace-relative path prefix (a file or a directory).
    pub path: String,
    /// Why this exception is sound. Required.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Clone, Default, Debug)]
pub struct Config {
    /// Audited exceptions, in file order.
    pub allows: Vec<AllowEntry>,
}

impl Config {
    /// Parses `text`, validating every entry against `known_rules`.
    ///
    /// # Errors
    ///
    /// Malformed lines, entries missing `rule`/`path`/`reason`, or
    /// entries naming unknown rules; messages carry the line number.
    pub fn parse(text: &str, known_rules: &[&str]) -> Result<Config, String> {
        let mut allows = Vec::new();
        let mut current: Option<(AllowEntry, usize)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(entry) = current.take() {
                    allows.push(finish_entry(entry, known_rules)?);
                }
                current = Some((
                    AllowEntry { rule: String::new(), path: String::new(), reason: String::new() },
                    lineno,
                ));
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(format!("analyze.toml:{lineno}: cannot parse `{line}`"));
            };
            let Some((entry, _)) = current.as_mut() else {
                return Err(format!(
                    "analyze.toml:{lineno}: `{key}` outside an [[allow]] entry"
                ));
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(format!("analyze.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(entry) = current.take() {
            allows.push(finish_entry(entry, known_rules)?);
        }
        Ok(Config { allows })
    }

    /// Loads and parses `path`; a missing file is an empty config (the
    /// tool works out of the box on a clean tree).
    ///
    /// # Errors
    ///
    /// Unreadable files or parse failures.
    pub fn load(path: &Path, known_rules: &[&str]) -> Result<Config, String> {
        if !path.exists() {
            return Ok(Config::default());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text, known_rules)
    }

    /// The entry allowing `rule` at `path`, if any.
    pub fn allows(&self, rule: &str, path: &str) -> Option<&AllowEntry> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (path == a.path || path.starts_with(a.path.as_str())))
    }
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // The subset forbids embedded quotes, so no unescaping is needed.
    if inner.contains('"') {
        return None;
    }
    Some((key.trim(), inner.to_owned()))
}

/// Validates a completed entry.
fn finish_entry(
    (entry, lineno): (AllowEntry, usize),
    known_rules: &[&str],
) -> Result<AllowEntry, String> {
    if entry.rule.is_empty() || entry.path.is_empty() {
        return Err(format!(
            "analyze.toml:{lineno}: [[allow]] entry needs both `rule` and `path`"
        ));
    }
    if entry.reason.is_empty() {
        return Err(format!(
            "analyze.toml:{lineno}: [[allow]] for `{}` at `{}` has no `reason` — \
             every exception must be justified",
            entry.rule, entry.path
        ));
    }
    if !known_rules.contains(&entry.rule.as_str()) {
        return Err(format!(
            "analyze.toml:{lineno}: unknown rule `{}` (known: {})",
            entry.rule,
            known_rules.join(", ")
        ));
    }
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["no-panic-paths", "no-wallclock-in-sim"];

    #[test]
    fn parses_entries_and_matches_prefixes() {
        let text = "# comment\n\n[[allow]]\nrule = \"no-wallclock-in-sim\"\n\
                    path = \"crates/bench/src\"\nreason = \"measurement harness\"\n";
        let cfg = Config::parse(text, RULES).expect("parses");
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.allows("no-wallclock-in-sim", "crates/bench/src/micro.rs").is_some());
        assert!(cfg.allows("no-wallclock-in-sim", "crates/cache/src/lru.rs").is_none());
        assert!(cfg.allows("no-panic-paths", "crates/bench/src/micro.rs").is_none());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let text = "[[allow]]\nrule = \"no-panic-paths\"\npath = \"crates/x\"\n";
        let err = Config::parse(text, RULES).expect_err("must fail");
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let text = "[[allow]]\nrule = \"no-such-rule\"\npath = \"x\"\nreason = \"y\"\n";
        let err = Config::parse(text, RULES).expect_err("must fail");
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn stray_keys_and_garbage_are_rejected() {
        assert!(Config::parse("rule = \"no-panic-paths\"", RULES).is_err());
        assert!(Config::parse("[[allow]]\nnot a kv line", RULES).is_err());
        assert!(Config::parse("[[allow]]\ncolor = \"red\"", RULES).is_err());
    }

    #[test]
    fn empty_and_comment_only_configs_are_valid() {
        assert!(Config::parse("", RULES).expect("empty ok").allows.is_empty());
        assert!(Config::parse("# nothing\n", RULES).expect("ok").allows.is_empty());
    }
}
