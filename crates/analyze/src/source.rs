//! One analyzed file: its lexed form, its classification, and the
//! test-code regions rules must skip.

use crate::lexer::{lex, Lexed, LineIndex, Token, TokenKind};
use crate::parser::{parse, Ast};

/// What kind of code a file holds, which decides which rules apply.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FileClass {
    /// Library code under a crate's `src/` — the full rule set applies.
    Library,
    /// Binary entry points (`src/bin/**`) — CLI code where wall-clock
    /// progress timing is legitimate.
    Binary,
    /// Tests, benches, examples, fixtures — exempt from library rules.
    Test,
}

/// A lexed source file plus everything rules need to query about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Classification by path.
    pub class: FileClass,
    /// Raw source text.
    pub src: String,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// Item-level parse of the file (functions, enums, impls, mods).
    pub ast: Ast,
    line_index: LineIndex,
    /// Byte ranges of `#[cfg(test)]` modules and `#[test]` functions.
    test_ranges: Vec<(usize, usize)>,
}

/// Classifies `rel_path` (workspace-relative, `/`-separated).
pub fn classify(rel_path: &str) -> FileClass {
    let is_test_dir = rel_path.starts_with("tests/")
        || rel_path.starts_with("examples/")
        || rel_path.starts_with("benches/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/examples/")
        || rel_path.contains("/benches/");
    if is_test_dir {
        FileClass::Test
    } else if rel_path.contains("/src/bin/") {
        FileClass::Binary
    } else {
        FileClass::Library
    }
}

impl SourceFile {
    /// Builds a `SourceFile` from in-memory text (the unit-test entry
    /// point; [`crate::workspace`] uses it after reading from disk).
    pub fn from_source(rel_path: &str, src: String) -> Self {
        let lexed = lex(&src);
        let ast = parse(&src, &lexed.tokens);
        let line_index = LineIndex::new(&src);
        let test_ranges = find_test_ranges(&src, &lexed);
        SourceFile {
            rel_path: rel_path.to_owned(),
            class: classify(rel_path),
            src,
            lexed,
            ast,
            line_index,
            test_ranges,
        }
    }

    /// The text of `token`.
    pub fn text(&self, token: &Token) -> &str {
        self.src.get(token.start..token.end).unwrap_or("")
    }

    /// 1-based (line, column) of byte offset `byte`.
    pub fn line_col(&self, byte: usize) -> (u32, u32) {
        self.line_index.line_col(&self.src, byte)
    }

    /// The text of 1-based line `line`, for diagnostics.
    pub fn line_text(&self, line: u32) -> &str {
        self.line_index.line_text(&self.src, line)
    }

    /// Whether byte offset `byte` sits inside `#[cfg(test)]` / `#[test]`
    /// code (or the whole file is test code).
    pub fn in_test(&self, byte: usize) -> bool {
        self.class == FileClass::Test
            || self.test_ranges.iter().any(|&(s, e)| byte >= s && byte < e)
    }
}

/// Finds the byte ranges of `#[cfg(test)] mod ... { }` blocks and
/// `#[test] fn ... { }` bodies so rules can skip test-only code.
fn find_test_ranges(src: &str, lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let text = |i: usize| toks.get(i).map_or("", |t| src.get(t.start..t.end).unwrap_or(""));
    let is_punct = |i: usize, c: &str| {
        toks.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && text(i) == c
    };
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#[cfg(test)]` or `#[test]` attribute?
        let matched = is_punct(i, "#")
            && is_punct(i + 1, "[")
            && ((text(i + 2) == "test" && is_punct(i + 3, "]"))
                || (text(i + 2) == "cfg"
                    && is_punct(i + 3, "(")
                    && text(i + 4) == "test"
                    && is_punct(i + 5, ")")
                    && is_punct(i + 6, "]")));
        if !matched {
            i += 1;
            continue;
        }
        // Skip to the end of this attribute, then over any further
        // attributes, to the item keyword.
        let mut j = i + 2;
        while j < toks.len() && !is_punct(j, "]") {
            j += 1;
        }
        j += 1;
        while is_punct(j, "#") && is_punct(j + 1, "[") {
            j += 2;
            let mut depth = 1usize;
            while j < toks.len() && depth > 0 {
                if is_punct(j, "[") {
                    depth += 1;
                } else if is_punct(j, "]") {
                    depth -= 1;
                }
                j += 1;
            }
        }
        // Find the item's opening brace and match it.
        while j < toks.len() && !is_punct(j, "{") {
            // A `;` first means an item without a body (e.g. `mod tests;`).
            if is_punct(j, ";") {
                break;
            }
            j += 1;
        }
        if j < toks.len() && is_punct(j, "{") {
            let open = toks[j].start;
            let mut depth = 0usize;
            while j < toks.len() {
                if is_punct(j, "{") {
                    depth += 1;
                } else if is_punct(j, "}") {
                    depth -= 1;
                    if depth == 0 {
                        ranges.push((open, toks[j].end));
                        break;
                    }
                }
                j += 1;
            }
        }
        i = j.max(i + 1);
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/traceio/src/reader.rs"), FileClass::Library);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
        assert_eq!(classify("crates/harness/src/bin/sdbp_repro.rs"), FileClass::Binary);
        assert_eq!(classify("crates/cache/tests/properties.rs"), FileClass::Test);
        assert_eq!(classify("tests/end_to_end.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Test);
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_owned());
        let unwraps: Vec<usize> = f
            .lexed
            .tokens
            .iter()
            .filter(|t| f.text(t) == "unwrap")
            .map(|t| t.start)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test(unwraps[0]), "library unwrap is live");
        assert!(f.in_test(unwraps[1]), "test unwrap is masked");
    }

    #[test]
    fn test_attribute_functions_are_masked() {
        let src = "#[test]\nfn check() { z.unwrap(); }\nfn live() {}\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_owned());
        let unwrap = f
            .lexed
            .tokens
            .iter()
            .find(|t| f.text(t) == "unwrap")
            .map(|t| t.start)
            .expect("unwrap token");
        assert!(f.in_test(unwrap));
        let live = f
            .lexed
            .tokens
            .iter()
            .find(|t| f.text(t) == "live")
            .map(|t| t.start)
            .expect("live token");
        assert!(!f.in_test(live));
    }

    #[test]
    fn derived_attributes_between_cfg_and_mod_are_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn t() { a.unwrap(); } }\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_owned());
        let unwrap = f
            .lexed
            .tokens
            .iter()
            .find(|t| f.text(t) == "unwrap")
            .map(|t| t.start)
            .expect("unwrap token");
        assert!(f.in_test(unwrap));
    }

    #[test]
    fn code_after_a_test_module_is_live_again() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { if x { a.unwrap(); } }\n}\n\
                   fn live() { b.unwrap(); }\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_owned());
        let unwraps: Vec<usize> = f
            .lexed
            .tokens
            .iter()
            .filter(|t| f.text(t) == "unwrap")
            .map(|t| t.start)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(f.in_test(unwraps[0]), "nested braces stay inside the masked range");
        assert!(!f.in_test(unwraps[1]), "the mask ends at the module's closing brace");
    }

    #[test]
    fn bodyless_test_mod_declaration_masks_nothing() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { a.unwrap(); }\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_owned());
        let unwrap = f
            .lexed
            .tokens
            .iter()
            .find(|t| f.text(t) == "unwrap")
            .map(|t| t.start)
            .expect("unwrap token");
        assert!(!f.in_test(unwrap), "`mod tests;` must not mask the rest of the file");
    }

    #[test]
    fn every_byte_of_a_tests_dir_file_is_test_code() {
        let f =
            SourceFile::from_source("crates/x/tests/t.rs", "fn t() { a.unwrap(); }".to_owned());
        assert!(f.in_test(0));
        assert!(f.in_test(f.src.len().saturating_sub(1)));
    }

    #[test]
    fn cfg_test_in_a_comment_or_string_masks_nothing() {
        let src = "// #[cfg(test)] mod tests { }\n\
                   fn live() { let s = \"#[cfg(test)]\"; a.unwrap(); }\n";
        let f = SourceFile::from_source("crates/x/src/lib.rs", src.to_owned());
        let unwrap = f
            .lexed
            .tokens
            .iter()
            .find(|t| f.text(t) == "unwrap")
            .map(|t| t.start)
            .expect("unwrap token");
        assert!(!f.in_test(unwrap));
    }
}
