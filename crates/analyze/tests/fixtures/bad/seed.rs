// Fixture: seed-discipline violations — ad-hoc seed derivations that
// produce correlated streams.

fn derive_additive(seed: u64, core: u64) -> u64 {
    seed + core
}

fn derive_xor(seed: u64, id: u64) -> u64 {
    id ^ seed
}

fn derive_wrapping(base_seed: u64) -> u64 {
    base_seed.wrapping_mul(0x9e37_79b9)
}
