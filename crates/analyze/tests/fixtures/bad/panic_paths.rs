// Fixture: every line here violates no-panic-paths when scanned as
// crates/traceio/src/<this file>. Expected findings are asserted in
// tests/fixtures.rs.

fn unwraps(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expects(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn panics() -> u32 {
    panic!("boom")
}

fn todos() -> u32 {
    todo!()
}

fn indexes(v: &[u32]) -> u32 {
    v[0]
}
