// Fixture: pub-api-docs violations — public surface without doc
// comments, scanned as library code.

pub fn undocumented() -> u32 {
    0
}

pub struct Bare {
    pub field: u32,
}

pub const LIMIT: usize = 16;

pub trait Nameless {
    fn call(&self);
}
