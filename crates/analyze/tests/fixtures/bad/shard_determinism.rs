//! Fixture: shard results merged in arrival order — every accumulation
//! below depends on which worker finishes first, so two runs of the
//! same input can merge in different orders.

/// Drains the result channel with an explicit `recv` loop, pushing in
/// completion order.
pub fn merge_by_recv(rx: std::sync::mpsc::Receiver<u64>) -> Vec<u64> {
    let mut results = Vec::new();
    while let Ok(r) = rx.recv() {
        results.push(r);
    }
    results
}

/// Iterates the receiver directly — the same arrival-order bug without
/// a spelled-out `recv` call.
pub fn merge_by_iteration(rx: std::sync::mpsc::Receiver<u64>) -> Vec<u64> {
    let mut results = Vec::new();
    for r in rx {
        results.push(r);
    }
    results
}

/// Batch-extends from a non-blocking drain; still completion order.
pub fn merge_by_extend(rx: std::sync::mpsc::Receiver<u64>) -> Vec<u64> {
    let mut results = Vec::new();
    loop {
        let Ok(r) = rx.try_recv() else { break };
        results.extend(std::iter::once(r));
    }
    results
}
