// Fixture: deterministic-iteration violations, scanned as
// crates/engine/src/<this file>.

use std::collections::HashMap;
use std::collections::HashSet;

fn aggregate(pairs: &[(String, u64)]) -> Vec<(String, u64)> {
    let mut totals: HashMap<String, u64> = HashMap::new();
    for (k, v) in pairs {
        *totals.entry(k.clone()).or_insert(0) += v;
    }
    totals.into_iter().collect()
}

fn distinct(keys: &[u64]) -> usize {
    keys.iter().collect::<HashSet<_>>().len()
}
