//! Fixture: two lock guards held across blocking rendezvous points —
//! a channel `recv` under a `let`-bound guard and a socket `write_all`
//! inside an `if let` guard body.

use std::io::Write as _;

/// Blocks on `recv` while holding the queue lock.
pub fn worker(q: &std::sync::Mutex<Vec<u64>>, rx: &std::sync::mpsc::Receiver<u64>) {
    if let Ok(mut g) = q.lock() {
        let job = rx.recv();
        if let Ok(job) = job {
            g.push(job);
        }
    }
}

/// Blocks on `write_all` while holding the buffer lock.
pub fn flusher(q: &std::sync::Mutex<Vec<u8>>, sock: &mut std::net::TcpStream) {
    if let Ok(g) = q.lock() {
        if let Err(e) = sock.write_all(&g) {
            eprintln!("flush failed: {e}");
        }
    }
}
