//! Fixture: per-line metadata as nested vectors in a hot crate — each
//! nested declaration must be flagged by `flat-metadata`.

pub struct BadPolicy {
    /// One inner Vec per set: a pointer chase on every access.
    pub lru_stacks: Vec<Vec<u8>>,
    /// Same shape through a type alias position.
    pub signatures: Vec<Vec<u16>>,
}

pub fn build(sets: usize, ways: usize) -> Vec<Vec<bool>> {
    vec![vec![false; ways]; sets]
}
