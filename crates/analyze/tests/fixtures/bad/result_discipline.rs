//! Fixture: every discard here swallows a real `Result` — a builtin
//! I/O method, a workspace function, a fallible macro, and a
//! statement-terminal `.ok()` drop.

use std::io::Write as _;

/// A workspace function whose `Result` must not be dropped.
pub fn persist(out: &mut std::fs::File) -> std::io::Result<()> {
    out.sync_all()
}

/// Four findings live here.
pub fn leaky(sock: &mut std::net::TcpStream, out: &mut std::fs::File) {
    let _ = sock.write_all(b"x");
    let _ = persist(out);
    let _ = writeln!(sock, "gone");
    sock.flush().ok();
}
