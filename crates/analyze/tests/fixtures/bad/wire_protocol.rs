//! Fixture: `Frame::Pong` has an encode arm and a handler, but no
//! decode arm — the frame this side emits is one it cannot read back.

/// The fixture wire contract.
pub enum Frame {
    /// Round-trips fine.
    Ping,
    /// Encoded and handled, but never decoded.
    Pong,
}

impl Frame {
    /// Writes the tag byte.
    pub fn encode(&self) -> u8 {
        match self {
            Frame::Ping => 0,
            Frame::Pong => 1,
        }
    }

    /// Reads the tag byte — `Pong` is missing.
    pub fn decode(tag: u8) -> Option<Frame> {
        match tag {
            0 => Some(Frame::Ping),
            _ => None,
        }
    }
}
