// Fixture: lossless-codec-casts violations, scanned as
// crates/traceio/src/format.rs-style codec code.

fn frame_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}

fn low_byte(v: u64) -> u8 {
    v as u8
}

fn oversized_mask(v: u64) -> u8 {
    (v & 0xfff) as u8
}
