// Fixture: no-wallclock-in-sim violations, scanned as library code of a
// simulation crate (e.g. crates/cache/src/<this file>).

use std::time::Instant;

fn timed_decision() -> bool {
    let t = Instant::now();
    t.elapsed().as_nanos().is_multiple_of(2)
}

fn stamped() -> u64 {
    match std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
