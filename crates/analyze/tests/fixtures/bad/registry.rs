//! Fixture: a registry registering one policy; whether the policy is
//! *covered* depends on the golden fixture and smoke gate the test
//! pairs this file with.

/// Registers the fixture policy set.
pub fn standard() -> Registry {
    let mut r = Registry::base();
    r.register(PolicyEntry { name: "tdbp", label: "tagged DBP" });
    r
}
