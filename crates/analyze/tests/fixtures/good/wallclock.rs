// Fixture: time-free simulation code — Duration values and logical
// clocks are fine; only wall-clock *sources* are banned.

use std::time::Duration;

const STEP: Duration = Duration::from_nanos(500);

fn advance(cycle: u64) -> u64 {
    cycle + 1
}

fn model_latency(cycles: u64) -> Duration {
    STEP.saturating_mul(u32::try_from(cycles).unwrap_or(u32::MAX))
}
