//! Fixture: every critical section ends before the blocking call — by
//! block scope, by explicit `drop`, or because the guard is an un-bound
//! temporary that dies at its own statement.

/// The guard's `if let` body closes before the `recv`.
pub fn drain(q: &std::sync::Mutex<Vec<u64>>, rx: &std::sync::mpsc::Receiver<u64>) {
    if let Ok(mut g) = q.lock() {
        g.clear();
    }
    if let Ok(job) = rx.recv() {
        if let Ok(mut g) = q.lock() {
            g.push(job);
        }
    }
}

/// Explicit `drop` ends the critical section before the send.
pub fn handoff(q: &std::sync::Mutex<Vec<u64>>, tx: &std::sync::mpsc::Sender<u64>) {
    if let Ok(mut g) = q.lock() {
        let job = g.pop();
        drop(g);
        if let Some(job) = job {
            match tx.send(job) {
                Ok(()) => {}
                Err(e) => eprintln!("receiver gone: {e}"),
            }
        }
    }
}
