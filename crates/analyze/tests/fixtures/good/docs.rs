//! Fixture: fully documented public surface, plus the forms the rule
//! deliberately skips (re-exports, restricted visibility).

/// Does nothing, but says so.
pub fn documented() -> u32 {
    0
}

/// A documented carrier.
#[derive(Debug)]
pub struct Carrier {
    /// The payload.
    pub field: u32,
}

/// How many of them fit.
pub const LIMIT: usize = 16;

pub(crate) fn internal() -> u32 {
    1
}
