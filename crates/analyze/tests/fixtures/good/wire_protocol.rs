//! Fixture: both variants have an encode arm and a decode arm (the
//! handler lives in `good/wire_handler.rs`).

/// The fixture wire contract.
pub enum Frame {
    /// Liveness probe.
    Ping,
    /// Liveness answer.
    Pong,
}

impl Frame {
    /// Writes the tag byte.
    pub fn encode(&self) -> u8 {
        match self {
            Frame::Ping => 0,
            Frame::Pong => 1,
        }
    }

    /// Reads the tag byte.
    pub fn decode(tag: u8) -> Option<Frame> {
        match tag {
            0 => Some(Frame::Ping),
            1 => Some(Frame::Pong),
            _ => None,
        }
    }
}
