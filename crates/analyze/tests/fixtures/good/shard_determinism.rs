//! Fixture: deterministic shard merges — results land in slots indexed
//! by their *task* order, so completion order cannot reorder the merge.

/// The engine fan-out discipline: every result carries its submission
/// index and fills a pre-sized slot.
pub fn merge_by_slot(rx: std::sync::mpsc::Receiver<(usize, u64)>, n: usize) -> Vec<Option<u64>> {
    let mut slots: Vec<Option<u64>> = (0..n).map(|_| None).collect();
    while let Ok((index, r)) = rx.recv() {
        if let Some(slot) = slots.get_mut(index) {
            *slot = Some(r);
        }
    }
    slots
}

/// Joining scoped threads in spawn order is task order by construction.
pub fn merge_by_join(handles: Vec<std::thread::JoinHandle<u64>>) -> Vec<u64> {
    handles.into_iter().filter_map(|h| h.join().ok()).collect()
}

/// Pushing inside an ordinary counted loop has nothing to do with
/// channel arrival and stays clean.
pub fn build_ranges(n: usize) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    for shard in 0..n {
        ranges.push(shard..shard + 1);
    }
    ranges
}
