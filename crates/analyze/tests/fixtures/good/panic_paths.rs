// Fixture: the panic-free counterparts of bad/panic_paths.rs — typed
// propagation, pattern matching, fixed-size reads, and test-only
// unwraps, none of which no-panic-paths may flag.

fn propagates(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "absent".to_owned())
}

fn matches_out(v: &[u32]) -> u32 {
    match v.first() {
        Some(&x) => x,
        None => 0,
    }
}

fn fixed_read(bytes: [u8; 4]) -> u32 {
    u32::from_le_bytes(bytes)
}

fn allowed(x: Option<u32>) -> u32 {
    // sdbp-allow(no-panic-paths): fixture demonstrating a justified escape
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        assert_eq!(Some(5).unwrap(), 5);
    }
}
