//! Fixture: the smoke gate iterates the whole registry, so every
//! registered policy is covered by construction.

fn main() {
    let registry = standard();
    for entry in registry.entries() {
        run(entry);
    }
}
