//! Fixture: the session-side handler covering every `Frame` variant.

/// Dispatches one decoded frame.
pub fn handle(frame: Frame) -> &'static str {
    match frame {
        Frame::Ping => "ping",
        Frame::Pong => "pong",
    }
}
