// Fixture: lossless codec conversions — visible same-line masks,
// widening casts, and checked conversions.

fn varint_byte(v: u64) -> u8 {
    (v & 0x7f) as u8
}

fn widen(v: u32) -> u64 {
    u64::from(v)
}

fn to_index(v: u32) -> usize {
    v as usize
}

fn checked_len(payload: &[u8]) -> Option<u32> {
    u32::try_from(payload.len()).ok()
}
