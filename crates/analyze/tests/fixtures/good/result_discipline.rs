//! Fixture: every `Result` is handled, propagated with `?`, bound for
//! later use, or justified in-line.

use std::io::Write as _;

/// Propagates its own I/O errors.
pub fn persist(out: &mut std::fs::File) -> std::io::Result<()> {
    out.sync_all()
}

/// Infallible helper: discarding its value is not a `Result` discard.
pub fn ident(x: u32) -> u32 {
    x
}

/// No findings live here; the justified discard is retained for audit.
pub fn careful(
    sock: &mut std::net::TcpStream,
    out: &mut std::fs::File,
) -> std::io::Result<()> {
    persist(out)?;
    if let Err(e) = sock.write_all(b"x") {
        eprintln!("send failed: {e}");
    }
    let _ = ident(3);
    let parsed = "7".parse::<u32>().ok();
    if let Some(n) = parsed {
        writeln!(sock, "{n}")?;
    }
    // sdbp-allow(result-discipline): fixture: best-effort goodbye on a dying socket
    let _ = sock.write_all(b"bye");
    Ok(())
}
