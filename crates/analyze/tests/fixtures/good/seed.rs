// Fixture: disciplined seed handling — construction, forking, and
// serialization, never arithmetic.

struct Rng64(u64);

impl Rng64 {
    fn new(seed: u64) -> Self {
        Rng64(seed)
    }

    fn fork(&self, stream: u64) -> Self {
        Rng64(self.0 ^ stream.rotate_left(17))
    }
}

fn per_core_stream(seed: u64, core: u64) -> Rng64 {
    Rng64::new(seed).fork(core)
}

fn persist(seed: u64) -> [u8; 8] {
    seed.to_le_bytes()
}
