// Fixture: the ordered counterparts of bad/det_iter.rs.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

fn aggregate(pairs: &[(String, u64)]) -> Vec<(String, u64)> {
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for (k, v) in pairs {
        *totals.entry(k.clone()).or_insert(0) += v;
    }
    totals.into_iter().collect()
}

fn distinct(keys: &[u64]) -> usize {
    keys.iter().collect::<BTreeSet<_>>().len()
}
