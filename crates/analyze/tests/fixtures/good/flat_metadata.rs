//! Fixture: the same metadata stored flat — clean under `flat-metadata`.

pub struct GoodPolicy {
    /// One contiguous allocation, indexed `set * width + lane`.
    pub lru_stacks: MetaPlane<u8>,
    pub signatures: MetaPlane<u16>,
    /// Per-set (not per-line) state may stay a plain vector.
    pub set_clock: Vec<u32>,
}

pub fn build(sets: usize, ways: usize) -> MetaPlane<bool> {
    MetaPlane::new(sets, ways, false)
}

#[cfg(test)]
mod tests {
    // Nested vectors in test scaffolding are fine.
    pub struct Expected {
        pub rows: Vec<Vec<u8>>,
    }
}
