//! Fixture corpus tests: every `bad/` snippet produces the expected
//! findings for its rule and every `good/` snippet comes back clean,
//! with each fixture routed through the full pipeline (walk → lex →
//! rules → allowlist/escape filtering) in a synthetic workspace.

use sdbp_analyze::config::Config;
use sdbp_analyze::workspace::{analyze_workspace, ScanOptions};
use std::path::{Path, PathBuf};

/// Builds a synthetic workspace under the test-scoped tmpdir: each
/// `(fixture, scan_path)` pair is copied in, and `golden_specs` (when
/// given) becomes a `tests/golden/replay_miss_counts.tsv` with one row
/// per spec — the shape the registry-coverage rule reads.
fn scan_fixture_set(
    case: &str,
    files: &[(&str, &str)],
    golden_specs: Option<&[&str]>,
) -> sdbp_analyze::report::Report {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("fixture-{case}"));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clean slate");
    }
    std::fs::create_dir_all(&root).expect("mkdir root");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    for (fixture, scan_path) in files {
        let dest = root.join(scan_path);
        std::fs::create_dir_all(dest.parent().expect("scan path has a parent")).expect("mkdir");
        let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
        std::fs::copy(&src, &dest).expect("fixture copied");
    }
    if let Some(specs) = golden_specs {
        std::fs::create_dir_all(root.join("tests/golden")).expect("mkdir golden");
        let mut tsv = String::from("# workload\taccesses\tsets\tways\tspec\tmisses\n");
        for s in specs {
            tsv.push_str(&format!("wl\t1000\t256\t16\t{s}\t42\n"));
        }
        std::fs::write(root.join("tests/golden/replay_miss_counts.tsv"), tsv).expect("tsv");
    }
    analyze_workspace(&root, &Config::default(), &ScanOptions::default()).expect("scan succeeds")
}

/// One-file convenience wrapper over [`scan_fixture_set`].
fn scan_fixture(case: &str, fixture: &str, scan_path: &str) -> sdbp_analyze::report::Report {
    scan_fixture_set(case, &[(fixture, scan_path)], None)
}

fn count(report: &sdbp_analyze::report::Report, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn bad_panic_paths_fixture_is_fully_flagged() {
    let r = scan_fixture("bad-panic", "bad/panic_paths.rs", "crates/traceio/src/fixture.rs");
    assert_eq!(count(&r, "no-panic-paths"), 5, "{:#?}", r.findings);
}

#[test]
fn good_panic_paths_fixture_is_clean_with_escape_recorded() {
    let r = scan_fixture("good-panic", "good/panic_paths.rs", "crates/traceio/src/fixture.rs");
    assert_eq!(count(&r, "no-panic-paths"), 0, "{:#?}", r.findings);
    assert_eq!(r.allowed.len(), 1, "the justified escape is retained for audit");
    assert_eq!(r.allowed[0].source, "line-escape");
}

#[test]
fn bad_det_iter_fixture_flags_every_hash_collection() {
    let r = scan_fixture("bad-det", "bad/det_iter.rs", "crates/engine/src/fixture.rs");
    assert_eq!(count(&r, "deterministic-iteration"), 5, "{:#?}", r.findings);
}

#[test]
fn good_det_iter_fixture_is_clean() {
    let r = scan_fixture("good-det", "good/det_iter.rs", "crates/engine/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_wallclock_fixture_flags_each_source() {
    let r = scan_fixture("bad-wall", "bad/wallclock.rs", "crates/cache/src/fixture.rs");
    assert_eq!(count(&r, "no-wallclock-in-sim"), 3, "{:#?}", r.findings);
}

#[test]
fn good_wallclock_fixture_is_clean() {
    let r = scan_fixture("good-wall", "good/wallclock.rs", "crates/cache/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_casts_fixture_flags_unmasked_narrowing() {
    let r = scan_fixture("bad-casts", "bad/casts.rs", "crates/traceio/src/format.rs");
    assert_eq!(count(&r, "lossless-codec-casts"), 3, "{:#?}", r.findings);
}

#[test]
fn good_casts_fixture_is_clean() {
    let r = scan_fixture("good-casts", "good/casts.rs", "crates/traceio/src/format.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_seed_fixture_flags_each_derivation() {
    let r = scan_fixture("bad-seed", "bad/seed.rs", "crates/workloads/src/fixture.rs");
    assert_eq!(count(&r, "seed-discipline"), 3, "{:#?}", r.findings);
}

#[test]
fn good_seed_fixture_is_clean() {
    let r = scan_fixture("good-seed", "good/seed.rs", "crates/workloads/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_docs_fixture_flags_each_undocumented_item() {
    let r = scan_fixture("bad-docs", "bad/docs.rs", "crates/cache/src/fixture.rs");
    assert_eq!(count(&r, "pub-api-docs"), 4, "{:#?}", r.findings);
}

#[test]
fn good_docs_fixture_is_clean() {
    let r = scan_fixture("good-docs", "good/docs.rs", "crates/cache/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_flat_metadata_fixture_flags_each_nested_vec() {
    let r = scan_fixture(
        "bad-flat",
        "bad/flat_metadata.rs",
        "crates/replacement/src/fixture.rs",
    );
    assert_eq!(count(&r, "flat-metadata"), 3, "{:#?}", r.findings);
}

#[test]
fn good_flat_metadata_fixture_is_clean() {
    let r = scan_fixture(
        "good-flat",
        "good/flat_metadata.rs",
        "crates/replacement/src/fixture.rs",
    );
    assert_eq!(count(&r, "flat-metadata"), 0, "{:#?}", r.findings);
}

#[test]
fn bad_result_discipline_fixture_flags_each_discard_shape() {
    let r = scan_fixture(
        "bad-result",
        "bad/result_discipline.rs",
        "crates/serve/src/fixture.rs",
    );
    assert_eq!(count(&r, "result-discipline"), 4, "{:#?}", r.findings);
    let ok_drop = r.findings.iter().find(|f| f.message.contains(".ok()")).expect("ok-drop");
    assert_eq!((ok_drop.line, ok_drop.col), (17, 17), "anchored at the `.ok()` itself");
}

#[test]
fn good_result_discipline_fixture_is_clean_with_escape_recorded() {
    let r = scan_fixture(
        "good-result",
        "good/result_discipline.rs",
        "crates/serve/src/fixture.rs",
    );
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
    assert_eq!(r.allowed.len(), 1, "the justified discard is retained for audit");
    assert_eq!(r.allowed[0].source, "line-escape");
    assert_eq!(r.allowed[0].finding.rule, "result-discipline");
}

#[test]
fn bad_wire_protocol_fixture_is_one_finding_at_the_variant() {
    let r = scan_fixture_set(
        "bad-wire",
        &[
            ("bad/wire_protocol.rs", "crates/serve/src/protocol.rs"),
            ("good/wire_handler.rs", "crates/serve/src/session.rs"),
        ],
        None,
    );
    assert_eq!(count(&r, "wire-exhaustive"), 1, "{:#?}", r.findings);
    let f = r.findings.iter().find(|f| f.rule == "wire-exhaustive").expect("finding");
    assert!(f.message.contains("`Frame::Pong` has no decode arm"), "{}", f.message);
    assert_eq!(f.path, "crates/serve/src/protocol.rs");
    assert_eq!(f.line, 9, "anchored at the variant declaration");
    assert!(f.snippet.contains("Pong"), "{}", f.snippet);
}

#[test]
fn good_wire_protocol_fixture_is_clean() {
    let r = scan_fixture_set(
        "good-wire",
        &[
            ("good/wire_protocol.rs", "crates/serve/src/protocol.rs"),
            ("good/wire_handler.rs", "crates/serve/src/session.rs"),
        ],
        None,
    );
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_registry_fixture_flags_the_uncovered_policy_at_its_registration() {
    let r = scan_fixture_set(
        "bad-registry",
        &[
            ("bad/registry.rs", "crates/core/src/registry.rs"),
            ("good/sample_smoke.rs", "crates/harness/src/bin/sample_smoke.rs"),
        ],
        Some(&["lru", "sampler:32"]),
    );
    assert_eq!(count(&r, "registry-coverage"), 1, "{:#?}", r.findings);
    let f = r.findings.iter().find(|f| f.rule == "registry-coverage").expect("finding");
    assert!(f.message.contains("`tdbp`"), "{}", f.message);
    assert!(f.message.contains("no row in"), "{}", f.message);
    assert_eq!(f.line, 8, "anchored at the `name:` literal");
}

#[test]
fn good_registry_fixture_is_clean_when_the_golden_tsv_covers_it() {
    let r = scan_fixture_set(
        "good-registry",
        &[
            ("bad/registry.rs", "crates/core/src/registry.rs"),
            ("good/sample_smoke.rs", "crates/harness/src/bin/sample_smoke.rs"),
        ],
        Some(&["lru", "tdbp:tables=2"]),
    );
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_mutex_discipline_fixture_flags_both_blocking_calls() {
    let r = scan_fixture(
        "bad-mutex",
        "bad/mutex_discipline.rs",
        "crates/serve/src/fixture.rs",
    );
    assert_eq!(count(&r, "mutex-discipline"), 2, "{:#?}", r.findings);
    let lines: Vec<u32> =
        r.findings.iter().filter(|f| f.rule == "mutex-discipline").map(|f| f.line).collect();
    assert_eq!(lines, vec![10, 20], "spans of the recv and write_all calls");
}

#[test]
fn good_mutex_discipline_fixture_is_clean() {
    let r = scan_fixture(
        "good-mutex",
        "good/mutex_discipline.rs",
        "crates/serve/src/fixture.rs",
    );
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_shard_determinism_fixture_flags_every_arrival_order_merge() {
    let r = scan_fixture(
        "bad-shard",
        "bad/shard_determinism.rs",
        "crates/cache/src/kernel.rs",
    );
    assert_eq!(count(&r, "shard-determinism"), 3, "{:#?}", r.findings);
}

#[test]
fn good_shard_determinism_fixture_is_clean() {
    let r = scan_fixture(
        "good-shard",
        "good/shard_determinism.rs",
        "crates/engine/src/fan.rs",
    );
    assert_eq!(count(&r, "shard-determinism"), 0, "{:#?}", r.findings);
}

#[test]
fn shard_determinism_is_scoped_to_the_kernel_and_fanout_modules() {
    // The same arrival-order merge outside the kernel/fan-out modules is
    // out of scope — the rule must not leak into e.g. the harness.
    let r = scan_fixture(
        "scoped-shard",
        "bad/shard_determinism.rs",
        "crates/harness/src/runner.rs",
    );
    assert_eq!(count(&r, "shard-determinism"), 0, "{:#?}", r.findings);
}

#[test]
fn injected_violation_fails_the_cli_and_writes_the_report() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fixture-cli-inject");
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clean slate");
    }
    let dir = root.join("crates/traceio/src");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(dir.join("lib.rs"), "/// Fine.\npub fn ok() {}\n").expect("clean file");
    let root_arg = root.to_string_lossy().into_owned();
    let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
    assert_eq!(sdbp_analyze::run_cli(&args(&["--root", &root_arg, "--quiet"])), 0);

    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad/panic_paths.rs");
    std::fs::copy(&fixture, dir.join("injected.rs")).expect("inject violation");
    assert_eq!(sdbp_analyze::run_cli(&args(&["--root", &root_arg, "--quiet"])), 1);
    let json =
        std::fs::read_to_string(root.join("target/analyze-report.json")).expect("report exists");
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("no-panic-paths"));
}
