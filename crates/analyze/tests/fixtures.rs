//! Fixture corpus tests: every `bad/` snippet produces the expected
//! findings for its rule and every `good/` snippet comes back clean,
//! with each fixture routed through the full pipeline (walk → lex →
//! rules → allowlist/escape filtering) in a synthetic workspace.

use sdbp_analyze::config::Config;
use sdbp_analyze::rules::all_rules;
use sdbp_analyze::workspace::analyze_workspace;
use std::path::{Path, PathBuf};

/// Builds a one-file workspace under the test-scoped tmpdir: the fixture
/// is copied to `scan_path`, where the rule under test is in scope.
fn scan_fixture(case: &str, fixture: &str, scan_path: &str) -> sdbp_analyze::report::Report {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("fixture-{case}"));
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clean slate");
    }
    let dest = root.join(scan_path);
    std::fs::create_dir_all(dest.parent().expect("scan path has a parent")).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    std::fs::copy(&src, &dest).expect("fixture copied");
    analyze_workspace(&root, &all_rules(), &Config::default()).expect("scan succeeds")
}

fn count(report: &sdbp_analyze::report::Report, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn bad_panic_paths_fixture_is_fully_flagged() {
    let r = scan_fixture("bad-panic", "bad/panic_paths.rs", "crates/traceio/src/fixture.rs");
    assert_eq!(count(&r, "no-panic-paths"), 5, "{:#?}", r.findings);
}

#[test]
fn good_panic_paths_fixture_is_clean_with_escape_recorded() {
    let r = scan_fixture("good-panic", "good/panic_paths.rs", "crates/traceio/src/fixture.rs");
    assert_eq!(count(&r, "no-panic-paths"), 0, "{:#?}", r.findings);
    assert_eq!(r.allowed.len(), 1, "the justified escape is retained for audit");
    assert_eq!(r.allowed[0].source, "line-escape");
}

#[test]
fn bad_det_iter_fixture_flags_every_hash_collection() {
    let r = scan_fixture("bad-det", "bad/det_iter.rs", "crates/engine/src/fixture.rs");
    assert_eq!(count(&r, "deterministic-iteration"), 5, "{:#?}", r.findings);
}

#[test]
fn good_det_iter_fixture_is_clean() {
    let r = scan_fixture("good-det", "good/det_iter.rs", "crates/engine/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_wallclock_fixture_flags_each_source() {
    let r = scan_fixture("bad-wall", "bad/wallclock.rs", "crates/cache/src/fixture.rs");
    assert_eq!(count(&r, "no-wallclock-in-sim"), 3, "{:#?}", r.findings);
}

#[test]
fn good_wallclock_fixture_is_clean() {
    let r = scan_fixture("good-wall", "good/wallclock.rs", "crates/cache/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_casts_fixture_flags_unmasked_narrowing() {
    let r = scan_fixture("bad-casts", "bad/casts.rs", "crates/traceio/src/format.rs");
    assert_eq!(count(&r, "lossless-codec-casts"), 3, "{:#?}", r.findings);
}

#[test]
fn good_casts_fixture_is_clean() {
    let r = scan_fixture("good-casts", "good/casts.rs", "crates/traceio/src/format.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_seed_fixture_flags_each_derivation() {
    let r = scan_fixture("bad-seed", "bad/seed.rs", "crates/workloads/src/fixture.rs");
    assert_eq!(count(&r, "seed-discipline"), 3, "{:#?}", r.findings);
}

#[test]
fn good_seed_fixture_is_clean() {
    let r = scan_fixture("good-seed", "good/seed.rs", "crates/workloads/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_docs_fixture_flags_each_undocumented_item() {
    let r = scan_fixture("bad-docs", "bad/docs.rs", "crates/cache/src/fixture.rs");
    assert_eq!(count(&r, "pub-api-docs"), 4, "{:#?}", r.findings);
}

#[test]
fn good_docs_fixture_is_clean() {
    let r = scan_fixture("good-docs", "good/docs.rs", "crates/cache/src/fixture.rs");
    assert!(r.findings.is_empty(), "{:#?}", r.findings);
}

#[test]
fn bad_flat_metadata_fixture_flags_each_nested_vec() {
    let r = scan_fixture(
        "bad-flat",
        "bad/flat_metadata.rs",
        "crates/replacement/src/fixture.rs",
    );
    assert_eq!(count(&r, "flat-metadata"), 3, "{:#?}", r.findings);
}

#[test]
fn good_flat_metadata_fixture_is_clean() {
    let r = scan_fixture(
        "good-flat",
        "good/flat_metadata.rs",
        "crates/replacement/src/fixture.rs",
    );
    assert_eq!(count(&r, "flat-metadata"), 0, "{:#?}", r.findings);
}

#[test]
fn injected_violation_fails_the_cli_and_writes_the_report() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("fixture-cli-inject");
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clean slate");
    }
    let dir = root.join("crates/traceio/src");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(dir.join("lib.rs"), "/// Fine.\npub fn ok() {}\n").expect("clean file");
    let root_arg = root.to_string_lossy().into_owned();
    let args = |v: &[&str]| v.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>();
    assert_eq!(sdbp_analyze::run_cli(&args(&["--root", &root_arg, "--quiet"])), 0);

    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad/panic_paths.rs");
    std::fs::copy(&fixture, dir.join("injected.rs")).expect("inject violation");
    assert_eq!(sdbp_analyze::run_cli(&args(&["--root", &root_arg, "--quiet"])), 1);
    let json =
        std::fs::read_to_string(root.join("target/analyze-report.json")).expect("report exists");
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("no-panic-paths"));
}
