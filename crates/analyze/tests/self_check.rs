//! Self-check: the committed tree, scanned with the committed
//! `analyze.toml`, has zero unsuppressed findings — the same gate CI
//! applies via `sdbp-repro analyze`.

use sdbp_analyze::config::Config;
use sdbp_analyze::rules::{all_rules, rule_ids};
use sdbp_analyze::workspace::{analyze_workspace, find_root};
use std::path::Path;

#[test]
fn committed_workspace_is_clean_under_committed_allowlist() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("workspace root above crates/analyze");
    let config =
        Config::load(&root.join("analyze.toml"), &rule_ids()).expect("committed allowlist parses");
    let report = analyze_workspace(&root, &all_rules(), &config).expect("scan succeeds");
    assert!(
        report.findings.is_empty(),
        "workspace has unsuppressed findings:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 50, "walk found only {} files", report.files_scanned);
    // Every allowlist entry must still match something: a stale entry is
    // an audit hole (the exception outlived the code it excused).
    for entry in &config.allows {
        assert!(
            report.allowed.iter().any(|a| a.source == "analyze.toml"
                && a.finding.rule == entry.rule
                && a.finding.path.starts_with(&entry.path)),
            "stale analyze.toml entry: {} at {} no longer matches anything",
            entry.rule,
            entry.path
        );
    }
}
