//! Self-check: the committed tree, scanned with the committed
//! `analyze.toml`, has zero unsuppressed findings — the same gate CI
//! applies via `sdbp-repro analyze`.

use sdbp_analyze::config::Config;
use sdbp_analyze::rules::rule_ids;
use sdbp_analyze::workspace::{analyze_workspace, collect_rust_files, find_root, ScanOptions};
use std::path::Path;

fn committed_scan() -> (std::path::PathBuf, Config, sdbp_analyze::report::Report) {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("workspace root above crates/analyze");
    let config =
        Config::load(&root.join("analyze.toml"), &rule_ids()).expect("committed allowlist parses");
    let report = analyze_workspace(&root, &config, &ScanOptions::default()).expect("scan succeeds");
    (root, config, report)
}

#[test]
fn committed_workspace_is_clean_under_committed_allowlist() {
    let (_, config, report) = committed_scan();
    assert!(
        report.findings.is_empty(),
        "workspace has unsuppressed findings:\n{:#?}",
        report.findings
    );
    assert!(report.files_scanned > 50, "walk found only {} files", report.files_scanned);
    // Every allowlist entry must still match something: a stale entry is
    // an audit hole (the exception outlived the code it excused).
    for entry in &config.allows {
        assert!(
            report.allowed.iter().any(|a| a.source == "analyze.toml"
                && a.finding.rule == entry.rule
                && a.finding.path.starts_with(&entry.path)),
            "stale analyze.toml entry: {} at {} no longer matches anything \
             (run `sdbp-analyze --prune` to list, `--prune --write` to remove)",
            entry.rule,
            entry.path
        );
    }
}

/// Rules apply workspace-wide by default; `[[exempt]]` entries opt code
/// out one rule at a time. No crate may opt out of *everything* — a
/// crate covered by zero rules has silently left the lint regime, which
/// is exactly the erosion the inverted default exists to prevent.
#[test]
fn every_crate_is_covered_by_at_least_one_rule() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_root(here).expect("workspace root above crates/analyze");
    let config =
        Config::load(&root.join("analyze.toml"), &rule_ids()).expect("committed allowlist parses");
    let files = collect_rust_files(&root).expect("walk succeeds");

    let mut crates: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for f in &files {
        if let Some(rest) = f.strip_prefix("crates/") {
            if let Some((name, _)) = rest.split_once('/') {
                crates.insert(format!("crates/{name}/"));
            }
        }
    }
    assert!(crates.len() >= 5, "expected a multi-crate workspace, found {crates:?}");

    for krate in &crates {
        // A crate is covered by a rule if at least one of its files is
        // not exempted from that rule.
        let crate_files: Vec<&String> =
            files.iter().filter(|f| f.starts_with(krate.as_str())).collect();
        let covered = rule_ids().iter().any(|rule| {
            crate_files.iter().any(|f| config.exempts(rule, f).is_none())
        });
        assert!(
            covered,
            "{krate} is exempted from every rule — remove at least one \
             [[exempt]] entry or justify the crate's existence to the linter"
        );
    }
}

/// The committed tree's exempt entries must each drop at least one
/// finding, for the same reason stale allows are rejected.
#[test]
fn exempt_entries_point_at_real_paths() {
    let (root, config, _) = committed_scan();
    for entry in &config.exempts {
        let p = root.join(&entry.path);
        assert!(
            p.exists(),
            "[[exempt]] {} at {} names a path that no longer exists",
            entry.rule,
            entry.path
        );
    }
}
