//! Property-based tests for the trace crate: every kernel respects its
//! declared region and PC-slot bounds for arbitrary parameters, and trace
//! composition is deterministic and well-formed.

use proptest::prelude::*;
use sdbp_trace::kernel::KernelSpec;
use sdbp_trace::{Instr, TraceBuilder};

fn arb_kernel() -> impl Strategy<Value = KernelSpec> {
    prop_oneof![
        (12u32..24, 1u32..5).prop_map(|(log2, touches)| {
            KernelSpec::scan_burst(1 << log2, touches)
        }),
        (10u32..20).prop_map(|log2| KernelSpec::hot_set(1 << log2)),
        (14u32..22, 2u32..8, 1usize..64).prop_map(|(log2, touches, slots)| {
            KernelSpec::generational(1 << log2, touches, slots)
        }),
        (14u32..22, 2u32..8, 1usize..64).prop_map(|(log2, touches, slots)| {
            KernelSpec::adversarial(1 << log2, touches, slots)
        }),
        (14u32..24).prop_map(|log2| KernelSpec::pointer_chase(1 << log2)),
        (14u32..24, 0.0f64..0.9).prop_map(|(log2, r)| {
            KernelSpec::pointer_chase_with_revisit(1 << log2, r)
        }),
        (16u32..24, 1u32..6, 1u32..6, 1u32..16).prop_map(|(log2, t1, t2, v)| {
            KernelSpec::classed(1 << log2, 64, vec![(1.0, t1), (0.5, t2)]).variants(v)
        }),
        (16u32..24, 1u32..6, 2u32..9, 0.0f64..0.9).prop_map(|(log2, t1, t2, q)| {
            KernelSpec::classed_ambiguous(1 << log2, 64, vec![(1.5, t1), (1.0, t2)])
                .chained(q)
        }),
        (18u32..26, 0.05f64..0.95, 2.0f64..5000.0).prop_map(|(log2, reuse, depth)| {
            KernelSpec::stack_distance(1 << log2, reuse, depth)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_respect_bounds_for_arbitrary_parameters(
        spec in arb_kernel(),
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut kernel = spec.instantiate(&mut rng);
        let region = kernel.region_bytes();
        let slots = kernel.pc_slots();
        for _ in 0..2_000 {
            let step = kernel.step(&mut rng);
            prop_assert!(step.region_offset < region,
                "{spec:?} escaped region: {} >= {region}", step.region_offset);
            prop_assert!(step.pc_slot < slots,
                "{spec:?} used slot {} of {slots}", step.pc_slot);
        }
    }

    #[test]
    fn traces_are_deterministic_for_arbitrary_compositions(
        kernels in prop::collection::vec(arb_kernel(), 1..5),
        seed in any::<u64>(),
        frac in 0.05f64..1.0,
    ) {
        let build = || {
            TraceBuilder::new(seed)
                .memory_fraction(frac)
                .kernels(kernels.iter().cloned())
                .build()
                .take(3_000)
                .collect::<Vec<Instr>>()
        };
        prop_assert_eq!(build(), build());
    }

    #[test]
    fn memory_fraction_is_approximately_respected(
        seed in any::<u64>(),
        frac in 0.1f64..0.9,
    ) {
        let trace = TraceBuilder::new(seed)
            .memory_fraction(frac)
            .kernel(KernelSpec::hot_set(1 << 14))
            .build();
        let n = 30_000;
        let mem = trace.take(n).filter(Instr::is_mem).count() as f64 / n as f64;
        prop_assert!((mem - frac).abs() < 0.03, "measured {mem} vs requested {frac}");
    }

    #[test]
    fn kernel_addresses_never_cross_region_boundaries(
        kernels in prop::collection::vec(arb_kernel(), 2..5),
        seed in any::<u64>(),
    ) {
        // Every memory access must land in exactly one kernel's 64 MiB-
        // aligned region band (regions are spaced at >= 64 MiB).
        let trace = TraceBuilder::new(seed).kernels(kernels.clone()).build();
        let mut bands: Vec<u64> = Vec::new();
        for i in trace.take(5_000) {
            if let Some(m) = i.mem {
                let band = m.addr.raw() >> 26;
                if !bands.contains(&band) {
                    bands.push(band);
                }
            }
        }
        // No more bands than would cover the largest kernel in 64 MiB
        // chunks, summed — a loose structural bound.
        let max_chunks: u64 = kernels
            .iter()
            .map(|_| 16u64) // each kernel region <= 64 MiB in arb_kernel => 1 band, allow slack
            .sum();
        prop_assert!(bands.len() as u64 <= max_chunks);
    }
}
