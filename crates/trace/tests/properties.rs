//! Property-style tests for the trace crate, driven by the in-repo
//! deterministic RNG: every kernel respects its declared region and
//! PC-slot bounds for randomized parameters, and trace composition is
//! deterministic and well-formed.
//!
//! Each test draws `CASES` randomized inputs from a fixed-seed [`Rng64`]
//! so failures reproduce exactly (no external proptest dependency — the
//! sandbox builds offline).

use sdbp_trace::kernel::KernelSpec;
use sdbp_trace::rng::Rng64;
use sdbp_trace::{Instr, TraceBuilder};

const CASES: u64 = 64;

/// Draws one randomized kernel spec, mirroring the old proptest
/// `arb_kernel` strategy (same variant set, same parameter ranges).
fn arb_kernel(rng: &mut Rng64) -> KernelSpec {
    match rng.gen_range(0u32..9) {
        0 => KernelSpec::scan_burst(1 << rng.gen_range(12u32..24), rng.gen_range(1u32..5)),
        1 => KernelSpec::hot_set(1 << rng.gen_range(10u32..20)),
        2 => KernelSpec::generational(
            1 << rng.gen_range(14u32..22),
            rng.gen_range(2u32..8),
            rng.gen_range(1usize..64),
        ),
        3 => KernelSpec::adversarial(
            1 << rng.gen_range(14u32..22),
            rng.gen_range(2u32..8),
            rng.gen_range(1usize..64),
        ),
        4 => KernelSpec::pointer_chase(1 << rng.gen_range(14u32..24)),
        5 => KernelSpec::pointer_chase_with_revisit(
            1 << rng.gen_range(14u32..24),
            rng.gen_range(0.0f64..0.9),
        ),
        6 => KernelSpec::classed(
            1 << rng.gen_range(16u32..24),
            64,
            vec![(1.0, rng.gen_range(1u32..6)), (0.5, rng.gen_range(1u32..6))],
        )
        .variants(rng.gen_range(1u32..16)),
        7 => KernelSpec::classed_ambiguous(
            1 << rng.gen_range(16u32..24),
            64,
            vec![(1.5, rng.gen_range(1u32..6)), (1.0, rng.gen_range(2u32..9))],
        )
        .chained(rng.gen_range(0.0f64..0.9)),
        _ => KernelSpec::stack_distance(
            1 << rng.gen_range(18u32..26),
            rng.gen_range(0.05f64..0.95),
            rng.gen_range(2.0f64..5000.0),
        ),
    }
}

#[test]
fn kernels_respect_bounds_for_arbitrary_parameters() {
    let mut gen = Rng64::seed_from_u64(0x7ace_0001);
    for _ in 0..CASES {
        let spec = arb_kernel(&mut gen);
        let seed = gen.next_u64();
        let mut rng = Rng64::seed_from_u64(seed);
        let mut kernel = spec.instantiate(&mut rng);
        let region = kernel.region_bytes();
        let slots = kernel.pc_slots();
        for _ in 0..2_000 {
            let step = kernel.step(&mut rng);
            assert!(
                step.region_offset < region,
                "{spec:?} (seed {seed}) escaped region: {} >= {region}",
                step.region_offset
            );
            assert!(
                step.pc_slot < slots,
                "{spec:?} (seed {seed}) used slot {} of {slots}",
                step.pc_slot
            );
        }
    }
}

#[test]
fn traces_are_deterministic_for_arbitrary_compositions() {
    let mut gen = Rng64::seed_from_u64(0x7ace_0002);
    for _ in 0..CASES {
        let kernels: Vec<KernelSpec> =
            (0..gen.gen_range(1usize..5)).map(|_| arb_kernel(&mut gen)).collect();
        let seed = gen.next_u64();
        let frac = gen.gen_range(0.05f64..1.0);
        let build = || {
            TraceBuilder::new(seed)
                .memory_fraction(frac)
                .kernels(kernels.iter().cloned())
                .build()
                .take(3_000)
                .collect::<Vec<Instr>>()
        };
        assert_eq!(build(), build(), "seed {seed} frac {frac}");
    }
}

#[test]
fn memory_fraction_is_approximately_respected() {
    let mut gen = Rng64::seed_from_u64(0x7ace_0003);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let frac = gen.gen_range(0.1f64..0.9);
        let trace = TraceBuilder::new(seed)
            .memory_fraction(frac)
            .kernel(KernelSpec::hot_set(1 << 14))
            .build();
        let n = 30_000;
        let mem = trace.take(n).filter(Instr::is_mem).count() as f64 / n as f64;
        assert!((mem - frac).abs() < 0.03, "seed {seed}: measured {mem} vs requested {frac}");
    }
}

#[test]
fn kernel_addresses_never_cross_region_boundaries() {
    let mut gen = Rng64::seed_from_u64(0x7ace_0004);
    for _ in 0..CASES {
        let kernels: Vec<KernelSpec> =
            (0..gen.gen_range(2usize..5)).map(|_| arb_kernel(&mut gen)).collect();
        let seed = gen.next_u64();
        // Every memory access must land in exactly one kernel's 64 MiB-
        // aligned region band (regions are spaced at >= 64 MiB).
        let trace = TraceBuilder::new(seed).kernels(kernels.clone()).build();
        let mut bands: Vec<u64> = Vec::new();
        for i in trace.take(5_000) {
            if let Some(m) = i.mem {
                let band = m.addr.raw() >> 26;
                if !bands.contains(&band) {
                    bands.push(band);
                }
            }
        }
        // No more bands than would cover the largest kernel in 64 MiB
        // chunks, summed — a loose structural bound.
        let max_chunks: u64 = kernels.iter().map(|_| 16u64).sum();
        assert!(bands.len() as u64 <= max_chunks, "seed {seed}");
    }
}
