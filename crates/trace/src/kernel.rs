//! Reuse-archetype kernels: the building blocks of synthetic workloads.
//!
//! A [`Kernel`] produces a stream of memory references within its own private
//! address region, labelling each reference with a *PC slot* (a small integer
//! naming which of the kernel's synthetic instructions performed it). The
//! [`crate::synthetic::TraceBuilder`] maps PC slots and regions onto disjoint
//! global PCs and addresses, and interleaves several kernels into a full
//! instruction stream.
//!
//! The archetypes encode the behaviours that matter to dead block
//! predictors:
//!
//! * [`ReusePattern::Streaming`] — sequential scans whose blocks are dead (or
//!   dead-on-arrival) after a short burst of touches; the last touch always
//!   comes from the same PC slot, the signal SDBP learns.
//! * [`ReusePattern::HotSet`] — a resident working set whose blocks are
//!   essentially never dead.
//! * [`ReusePattern::Generational`] — blocks live for a fixed number of
//!   touches issued by a *PC sequence*, then die; the terminating slot is
//!   deterministic unless `adversarial` is set, in which case the slot is
//!   random and the last-touch PC carries no information (the `astar`-like
//!   failure mode in the paper's Figure 9).
//! * [`ReusePattern::PointerChase`] — dependent loads walking a random
//!   permutation; destroys memory-level parallelism in the timing model.
//! * [`ReusePattern::StackDistance`] — reuse distances drawn from a geometric
//!   distribution over an LRU stack, giving tunable, smooth miss-rate versus
//!   cache-size curves (used for Table IV's sensitivity curves).

use crate::access::{AccessKind, BLOCK_BYTES};
use crate::rng::Rng64;
use std::fmt;

/// Upper bound on the LRU-stack tracked by [`ReusePattern::StackDistance`].
const STACK_DISTANCE_CAP: usize = 1 << 16;

/// One reference emitted by a kernel, in kernel-local coordinates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct KernelStep {
    /// Which of the kernel's synthetic instructions issued the reference.
    pub pc_slot: u32,
    /// Byte offset of the reference within the kernel's region.
    pub region_offset: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// True if the next instruction depends on this load's value.
    pub dependent: bool,
}

/// A source of kernel-local memory references.
///
/// `Send` so a composed [`SyntheticTrace`](crate::SyntheticTrace) can be
/// opened by a [`TraceSource`](crate::TraceSource) inside a worker job.
pub trait Kernel: fmt::Debug + Send {
    /// Number of distinct PC slots this kernel may emit.
    fn pc_slots(&self) -> u32;

    /// Size in bytes of the address region this kernel references.
    fn region_bytes(&self) -> u64;

    /// Produces the next reference.
    fn step(&mut self, rng: &mut Rng64) -> KernelStep;
}

/// Declarative description of a kernel, turned into a live [`Kernel`] by
/// [`KernelSpec::instantiate`].
#[derive(Clone, PartialEq, Debug)]
pub enum ReusePattern {
    /// Sequential scan over `region_bytes`; each block is touched
    /// `touches_per_block` times (by PC slots `0..touches`) before the scan
    /// moves on, then wraps around forever.
    Streaming {
        /// Region size in bytes.
        region_bytes: u64,
        /// Touches per block before moving to the next block.
        touches_per_block: u32,
        /// Stride between consecutive blocks, in blocks (>= 1).
        stride_blocks: u64,
        /// Fraction of touches that are writes.
        write_fraction: f64,
    },
    /// Uniform random references within a (typically cache-resident) region.
    HotSet {
        /// Region size in bytes.
        region_bytes: u64,
        /// Number of distinct PC slots used.
        pc_slots: u32,
        /// Fraction of touches that are writes.
        write_fraction: f64,
    },
    /// A pool of `live_slots` concurrently-live blocks; each step touches a
    /// random live block. A block dies after `touches_per_block` touches and
    /// its slot is refilled with a fresh block.
    Generational {
        /// Region size in bytes (allocation wraps within it).
        region_bytes: u64,
        /// Touches each block receives before dying.
        touches_per_block: u32,
        /// Number of concurrently live blocks.
        live_slots: usize,
        /// If true, the PC slot for each touch is random rather than the
        /// touch index, decorrelating the last-touch PC from death.
        adversarial: bool,
        /// Fraction of touches that are writes.
        write_fraction: f64,
    },
    /// Dependent loads walking a pseudo-random permutation of the region.
    PointerChase {
        /// Region size in bytes.
        region_bytes: u64,
        /// Probability of revisiting a recently-touched block instead of
        /// following the chain (produces some temporal locality).
        revisit: f64,
        /// Number of recently-touched blocks eligible for revisits.
        revisit_window: usize,
    },
    /// A pool of concurrently-live blocks whose *lifetime class* is drawn
    /// at allocation: a class-`k` block receives `classes[k].touches`
    /// touches and then dies. With `shared_prefix` false each class uses
    /// its own PC slots (a clean, perfectly PC-correlated death signal —
    /// the hmmer-like case); with `shared_prefix` true all classes share
    /// one PC sequence, so a short class's terminal PC is a longer class's
    /// *mid-life* PC — the ambiguity that punishes aggressive predictors
    /// (the astar-like case).
    Classed {
        /// Region size in bytes (allocation wraps within it).
        region_bytes: u64,
        /// Number of concurrently live blocks.
        live_slots: usize,
        /// Lifetime classes: `(weight, touches)`.
        classes: Vec<(f64, u32)>,
        /// Whether classes share the same PC sequence (ambiguous signal).
        shared_prefix: bool,
        /// Number of distinct PCs playing each role (real programs touch a
        /// data structure from many static instructions). Role semantics
        /// are identical across a role's variants, but predictors that
        /// build *composite* signatures (reference traces) see a
        /// combinatorial signature space, as they do on real code.
        pc_variants: u32,
        /// Probability that a non-terminal touch is immediately followed by
        /// the block's next touch. Chained touches land while the block is
        /// still L1/L2-resident, so the mid-level cache filters them from
        /// the LLC's view: the *visible* reference trace varies randomly
        /// per block (the paper's §VII-A3 filtering effect), while the
        /// terminal touch — never chained — stays visible.
        quick_chain: f64,
        /// Fraction of touches that are writes.
        write_fraction: f64,
    },
    /// LRU-stack model: with probability `reuse`, re-touch the block at a
    /// geometric stack depth with the given mean; otherwise touch a fresh
    /// block.
    StackDistance {
        /// Region size in bytes (fresh blocks allocate within it, wrapping).
        region_bytes: u64,
        /// Probability a reference reuses an existing block.
        reuse: f64,
        /// Mean LRU-stack depth of reuses (in blocks).
        mean_depth: f64,
        /// Fraction of touches that are writes.
        write_fraction: f64,
    },
}

/// A [`ReusePattern`] plus its interleaving weight.
#[derive(Clone, PartialEq, Debug)]
pub struct KernelSpec {
    /// The reuse behaviour.
    pub pattern: ReusePattern,
    /// Relative probability of this kernel supplying the next memory
    /// reference when interleaved with other kernels.
    pub weight: f64,
}

impl KernelSpec {
    /// Wraps a pattern with weight 1.0.
    pub fn new(pattern: ReusePattern) -> Self {
        KernelSpec { pattern, weight: 1.0 }
    }

    /// A pure streaming scan: one touch per block (dead on arrival at the
    /// LLC once the L1 captures the spatial locality).
    pub fn streaming(region_bytes: u64) -> Self {
        Self::new(ReusePattern::Streaming {
            region_bytes,
            touches_per_block: 1,
            stride_blocks: 1,
            write_fraction: 0.2,
        })
    }

    /// A streaming scan with a short per-block touch burst.
    pub fn scan_burst(region_bytes: u64, touches_per_block: u32) -> Self {
        Self::new(ReusePattern::Streaming {
            region_bytes,
            touches_per_block,
            stride_blocks: 1,
            write_fraction: 0.2,
        })
    }

    /// A cache-resident hot working set.
    pub fn hot_set(region_bytes: u64) -> Self {
        Self::new(ReusePattern::HotSet { region_bytes, pc_slots: 4, write_fraction: 0.3 })
    }

    /// Generational blocks with PC-correlated death.
    pub fn generational(region_bytes: u64, touches_per_block: u32, live_slots: usize) -> Self {
        Self::new(ReusePattern::Generational {
            region_bytes,
            touches_per_block,
            live_slots,
            adversarial: false,
            write_fraction: 0.25,
        })
    }

    /// Generational blocks whose last-touch PC is uninformative.
    pub fn adversarial(region_bytes: u64, touches_per_block: u32, live_slots: usize) -> Self {
        Self::new(ReusePattern::Generational {
            region_bytes,
            touches_per_block,
            live_slots,
            adversarial: true,
            write_fraction: 0.25,
        })
    }

    /// Dependent pointer chasing over the region.
    pub fn pointer_chase(region_bytes: u64) -> Self {
        Self::new(ReusePattern::PointerChase { region_bytes, revisit: 0.0, revisit_window: 64 })
    }

    /// Pointer chasing with some short-range revisits.
    pub fn pointer_chase_with_revisit(region_bytes: u64, revisit: f64) -> Self {
        Self::new(ReusePattern::PointerChase { region_bytes, revisit, revisit_window: 64 })
    }

    /// Lifetime classes with *distinct* PC pools: death is perfectly
    /// PC-correlated (the signal dead block predictors exploit).
    pub fn classed(region_bytes: u64, live_slots: usize, classes: Vec<(f64, u32)>) -> Self {
        Self::new(ReusePattern::Classed {
            region_bytes,
            live_slots,
            classes,
            shared_prefix: false,
            pc_variants: 1,
            quick_chain: 0.0,
            write_fraction: 0.25,
        })
    }

    /// Lifetime classes sharing one PC sequence: the last-touch PC of a
    /// short-lived block is a mid-life PC of longer-lived ones, so the
    /// dead/live training signal is inherently ambiguous.
    pub fn classed_ambiguous(
        region_bytes: u64,
        live_slots: usize,
        classes: Vec<(f64, u32)>,
    ) -> Self {
        Self::new(ReusePattern::Classed {
            region_bytes,
            live_slots,
            classes,
            shared_prefix: true,
            pc_variants: 1,
            quick_chain: 0.0,
            write_fraction: 0.25,
        })
    }

    /// Geometric stack-distance reuse.
    pub fn stack_distance(region_bytes: u64, reuse: f64, mean_depth: f64) -> Self {
        Self::new(ReusePattern::StackDistance {
            region_bytes,
            reuse,
            mean_depth,
            write_fraction: 0.3,
        })
    }

    /// Sets the number of PC variants per role (classed kernels only).
    ///
    /// # Panics
    ///
    /// Panics if the pattern is not [`ReusePattern::Classed`] or `n` is 0.
    pub fn variants(mut self, n: u32) -> Self {
        assert!(n >= 1, "variant count must be positive");
        match &mut self.pattern {
            ReusePattern::Classed { pc_variants, .. } => *pc_variants = n,
            other => panic!("variants() only applies to classed kernels, not {other:?}"),
        }
        self
    }

    /// Sets the quick-chain probability (classed kernels only): how often
    /// a non-terminal touch is immediately followed by the next one, which
    /// the L1/L2 then filter from the LLC's view.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is not [`ReusePattern::Classed`] or `q` is
    /// outside `[0, 1)`.
    pub fn chained(mut self, q: f64) -> Self {
        assert!((0.0..1.0).contains(&q), "chain probability must be in [0, 1)");
        match &mut self.pattern {
            ReusePattern::Classed { quick_chain, .. } => *quick_chain = q,
            other => panic!("chained() only applies to classed kernels, not {other:?}"),
        }
        self
    }

    /// Sets the interleaving weight (builder style).
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "kernel weight must be positive");
        self.weight = weight;
        self
    }

    /// Builds the runnable kernel.
    ///
    /// # Panics
    ///
    /// Panics if the pattern's parameters are degenerate (empty region, zero
    /// touches, probabilities outside `[0, 1]`).
    pub fn instantiate(&self, rng: &mut Rng64) -> Box<dyn Kernel> {
        match self.pattern.clone() {
            ReusePattern::Streaming { region_bytes, touches_per_block, stride_blocks, write_fraction } => {
                Box::new(StreamingKernel::new(
                    region_bytes,
                    touches_per_block,
                    stride_blocks,
                    write_fraction,
                ))
            }
            ReusePattern::HotSet { region_bytes, pc_slots, write_fraction } => {
                Box::new(HotSetKernel::new(region_bytes, pc_slots, write_fraction))
            }
            ReusePattern::Generational {
                region_bytes,
                touches_per_block,
                live_slots,
                adversarial,
                write_fraction,
            } => Box::new(GenerationalKernel::new(
                region_bytes,
                touches_per_block,
                live_slots,
                adversarial,
                write_fraction,
                rng,
            )),
            ReusePattern::Classed {
                region_bytes,
                live_slots,
                classes,
                shared_prefix,
                pc_variants,
                quick_chain,
                write_fraction,
            } => Box::new(ClassedKernel::new(
                region_bytes,
                live_slots,
                classes,
                shared_prefix,
                pc_variants,
                quick_chain,
                write_fraction,
                rng,
            )),
            ReusePattern::PointerChase { region_bytes, revisit, revisit_window } => {
                Box::new(PointerChaseKernel::new(region_bytes, revisit, revisit_window, rng))
            }
            ReusePattern::StackDistance { region_bytes, reuse, mean_depth, write_fraction } => {
                Box::new(StackDistanceKernel::new(region_bytes, reuse, mean_depth, write_fraction))
            }
        }
    }
}

fn region_blocks(region_bytes: u64) -> u64 {
    let blocks = region_bytes / BLOCK_BYTES;
    assert!(blocks >= 1, "kernel region must hold at least one block");
    blocks
}

fn pick_kind(rng: &mut Rng64, write_fraction: f64) -> AccessKind {
    debug_assert!((0.0..=1.0).contains(&write_fraction));
    if write_fraction > 0.0 && rng.gen_bool(write_fraction) {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

/// See [`ReusePattern::Streaming`].
#[derive(Debug)]
struct StreamingKernel {
    blocks: u64,
    touches_per_block: u32,
    stride_blocks: u64,
    write_fraction: f64,
    cursor_block: u64,
    touch: u32,
}

impl StreamingKernel {
    fn new(region_bytes: u64, touches_per_block: u32, stride_blocks: u64, write_fraction: f64) -> Self {
        assert!(touches_per_block >= 1, "touches_per_block must be at least 1");
        assert!(stride_blocks >= 1, "stride_blocks must be at least 1");
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be a probability");
        StreamingKernel {
            blocks: region_blocks(region_bytes),
            touches_per_block,
            stride_blocks,
            write_fraction,
            cursor_block: 0,
            touch: 0,
        }
    }
}

impl Kernel for StreamingKernel {
    fn pc_slots(&self) -> u32 {
        self.touches_per_block
    }

    fn region_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn step(&mut self, rng: &mut Rng64) -> KernelStep {
        let slot = self.touch;
        // Touch different words within the block so the L1 sees spatial reuse.
        let word = (slot as u64 * 8) % BLOCK_BYTES;
        let step = KernelStep {
            pc_slot: slot,
            region_offset: self.cursor_block * BLOCK_BYTES + word,
            kind: pick_kind(rng, self.write_fraction),
            dependent: false,
        };
        self.touch += 1;
        if self.touch == self.touches_per_block {
            self.touch = 0;
            self.cursor_block = (self.cursor_block + self.stride_blocks) % self.blocks;
        }
        step
    }
}

/// See [`ReusePattern::HotSet`].
#[derive(Debug)]
struct HotSetKernel {
    blocks: u64,
    pc_slots: u32,
    write_fraction: f64,
}

impl HotSetKernel {
    fn new(region_bytes: u64, pc_slots: u32, write_fraction: f64) -> Self {
        assert!(pc_slots >= 1, "pc_slots must be at least 1");
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be a probability");
        HotSetKernel { blocks: region_blocks(region_bytes), pc_slots, write_fraction }
    }
}

impl Kernel for HotSetKernel {
    fn pc_slots(&self) -> u32 {
        self.pc_slots
    }

    fn region_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn step(&mut self, rng: &mut Rng64) -> KernelStep {
        let block = rng.gen_range(0..self.blocks);
        KernelStep {
            pc_slot: rng.gen_range(0..self.pc_slots),
            region_offset: block * BLOCK_BYTES,
            kind: pick_kind(rng, self.write_fraction),
            dependent: false,
        }
    }
}

/// See [`ReusePattern::Generational`].
#[derive(Debug)]
struct GenerationalKernel {
    blocks: u64,
    touches_per_block: u32,
    adversarial: bool,
    write_fraction: f64,
    /// (block, touches so far) for each live slot.
    live: Vec<(u64, u32)>,
    next_alloc: u64,
}

impl GenerationalKernel {
    fn new(
        region_bytes: u64,
        touches_per_block: u32,
        live_slots: usize,
        adversarial: bool,
        write_fraction: f64,
        rng: &mut Rng64,
    ) -> Self {
        assert!(touches_per_block >= 1, "touches_per_block must be at least 1");
        assert!(live_slots >= 1, "live_slots must be at least 1");
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be a probability");
        let blocks = region_blocks(region_bytes);
        assert!(
            live_slots as u64 <= blocks,
            "live_slots ({live_slots}) exceeds region blocks ({blocks})"
        );
        // Stagger initial touch counts so deaths are spread in time.
        let live = (0..live_slots as u64)
            .map(|i| (i, rng.gen_range(0..touches_per_block)))
            .collect();
        GenerationalKernel {
            blocks,
            touches_per_block,
            adversarial,
            write_fraction,
            live,
            next_alloc: live_slots as u64,
        }
    }
}

impl Kernel for GenerationalKernel {
    fn pc_slots(&self) -> u32 {
        self.touches_per_block
    }

    fn region_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn step(&mut self, rng: &mut Rng64) -> KernelStep {
        let slot_idx = rng.gen_range(0..self.live.len());
        let (block, touches) = self.live[slot_idx];
        let pc_slot = if self.adversarial {
            rng.gen_range(0..self.touches_per_block)
        } else {
            touches
        };
        let step = KernelStep {
            pc_slot,
            region_offset: block * BLOCK_BYTES,
            kind: pick_kind(rng, self.write_fraction),
            dependent: false,
        };
        if touches + 1 == self.touches_per_block {
            // Block is now dead; refill the slot with a fresh block.
            self.live[slot_idx] = (self.next_alloc % self.blocks, 0);
            self.next_alloc = self.next_alloc.wrapping_add(1);
        } else {
            self.live[slot_idx].1 = touches + 1;
        }
        step
    }
}

/// See [`ReusePattern::Classed`].
#[derive(Debug)]
struct ClassedKernel {
    blocks: u64,
    /// `(weight cumulative, touches)` per class.
    classes: Vec<(f64, u32)>,
    total_weight: f64,
    /// PC slot offset of each class (0 for all when sharing a prefix).
    class_pc_base: Vec<u32>,
    pc_variants: u32,
    pc_slots: u32,
    quick_chain: f64,
    write_fraction: f64,
    /// `(block, class, touches so far)` per live slot.
    live: Vec<(u64, u32, u32)>,
    /// Slot whose next touch must come immediately (quick chain).
    pending: Option<usize>,
    next_alloc: u64,
}

impl ClassedKernel {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring the pattern fields
    fn new(
        region_bytes: u64,
        live_slots: usize,
        classes: Vec<(f64, u32)>,
        shared_prefix: bool,
        pc_variants: u32,
        quick_chain: f64,
        write_fraction: f64,
        rng: &mut Rng64,
    ) -> Self {
        assert!(!classes.is_empty(), "classed kernel needs at least one class");
        assert!(pc_variants >= 1, "pc_variants must be positive");
        assert!((0.0..1.0).contains(&quick_chain), "quick_chain must be in [0, 1)");
        assert!(live_slots >= 1, "live_slots must be at least 1");
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be a probability");
        let blocks = region_blocks(region_bytes);
        assert!(
            live_slots as u64 <= blocks,
            "live_slots ({live_slots}) exceeds region blocks ({blocks})"
        );
        let mut cume = 0.0;
        let mut cume_classes = Vec::with_capacity(classes.len());
        let mut class_pc_base = Vec::with_capacity(classes.len());
        let mut next_base = 0u32;
        for &(w, touches) in &classes {
            assert!(w > 0.0, "class weight must be positive");
            assert!(touches >= 1, "class touches must be at least 1");
            cume += w;
            cume_classes.push((cume, touches));
            class_pc_base.push(if shared_prefix { 0 } else { next_base });
            next_base += touches;
        }
        let roles = if shared_prefix {
            classes.iter().map(|&(_, t)| t).max().expect("non-empty classes")
        } else {
            next_base
        };
        let pc_slots = roles * pc_variants;
        let mut kernel = ClassedKernel {
            blocks,
            classes: cume_classes,
            total_weight: cume,
            class_pc_base,
            pc_variants,
            pc_slots,
            quick_chain,
            write_fraction,
            live: Vec::with_capacity(live_slots),
            pending: None,
            next_alloc: 0,
        };
        for _ in 0..live_slots {
            let class = kernel.pick_class(rng);
            let block = kernel.next_alloc % kernel.blocks;
            kernel.next_alloc += 1;
            // Stagger starting progress so deaths spread out in time.
            let start = rng.gen_range(0..kernel.classes[class as usize].1);
            kernel.live.push((block, class, start));
        }
        kernel
    }

    fn pick_class(&self, rng: &mut Rng64) -> u32 {
        let x = rng.gen_range(0.0..self.total_weight);
        self.classes.iter().position(|&(c, _)| x < c).unwrap_or(self.classes.len() - 1) as u32
    }
}

impl Kernel for ClassedKernel {
    fn pc_slots(&self) -> u32 {
        self.pc_slots
    }

    fn region_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn step(&mut self, rng: &mut Rng64) -> KernelStep {
        let slot_idx = match self.pending.take() {
            Some(slot) => slot,
            None => rng.gen_range(0..self.live.len()),
        };
        let (block, class, touches) = self.live[slot_idx];
        let class_touches = self.classes[class as usize].1;
        let role = self.class_pc_base[class as usize] + touches;
        let variant = if self.pc_variants > 1 { rng.gen_range(0..self.pc_variants) } else { 0 };
        let step = KernelStep {
            pc_slot: role * self.pc_variants + variant,
            region_offset: block * BLOCK_BYTES,
            kind: pick_kind(rng, self.write_fraction),
            dependent: false,
        };
        if touches + 1 == class_touches {
            // Dead: refill the slot with a fresh block of a fresh class.
            let new_class = self.pick_class(rng);
            self.live[slot_idx] = (self.next_alloc % self.blocks, new_class, 0);
            self.next_alloc = self.next_alloc.wrapping_add(1);
        } else {
            self.live[slot_idx].2 = touches + 1;
            // Chain only when the *next* touch is not the terminal one, so
            // the visible trace varies but the last touch stays visible.
            if self.quick_chain > 0.0
                && touches + 2 < class_touches
                && rng.gen_bool(self.quick_chain)
            {
                self.pending = Some(slot_idx);
            }
        }
        step
    }
}

/// See [`ReusePattern::PointerChase`].
#[derive(Debug)]
struct PointerChaseKernel {
    blocks: u64,
    revisit: f64,
    cursor: u64,
    /// Multiplicative-congruential walk parameters giving a full cycle over
    /// the (power-of-two-rounded) block space.
    mult: u64,
    inc: u64,
    recent: Vec<u64>,
    recent_cursor: usize,
}

impl PointerChaseKernel {
    fn new(region_bytes: u64, revisit: f64, revisit_window: usize, rng: &mut Rng64) -> Self {
        assert!((0.0..=1.0).contains(&revisit), "revisit must be a probability");
        assert!(revisit_window >= 1, "revisit_window must be at least 1");
        let blocks = region_blocks(region_bytes);
        // LCG over 2^k with odd increment and mult ≡ 1 (mod 4) has full
        // period; mapping into `blocks` by rejection-free modulo keeps the
        // walk pseudo-random with negligible bias for our purposes.
        let mult = 6364136223846793005;
        let inc = rng.next_u64() | 1;
        PointerChaseKernel {
            blocks,
            revisit,
            cursor: rng.gen_range(0..blocks),
            mult,
            inc,
            recent: Vec::with_capacity(revisit_window),
            recent_cursor: 0,
        }
    }

    fn advance(&mut self) -> u64 {
        self.cursor = self.cursor.wrapping_mul(self.mult).wrapping_add(self.inc);
        self.cursor % self.blocks
    }
}

impl Kernel for PointerChaseKernel {
    fn pc_slots(&self) -> u32 {
        2 // slot 0: the chase load, slot 1: revisit loads
    }

    fn region_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn step(&mut self, rng: &mut Rng64) -> KernelStep {
        if !self.recent.is_empty() && self.revisit > 0.0 && rng.gen_bool(self.revisit) {
            let block = self.recent[rng.gen_range(0..self.recent.len())];
            return KernelStep {
                pc_slot: 1,
                region_offset: block * BLOCK_BYTES,
                kind: AccessKind::Read,
                dependent: false,
            };
        }
        let block = self.advance();
        if self.recent.len() < self.recent.capacity() {
            self.recent.push(block);
        } else {
            self.recent[self.recent_cursor] = block;
            self.recent_cursor = (self.recent_cursor + 1) % self.recent.len();
        }
        KernelStep {
            pc_slot: 0,
            region_offset: block * BLOCK_BYTES,
            kind: AccessKind::Read,
            dependent: true,
        }
    }
}

/// See [`ReusePattern::StackDistance`].
#[derive(Debug)]
struct StackDistanceKernel {
    blocks: u64,
    reuse: f64,
    /// Geometric success probability derived from the mean depth.
    geo_p: f64,
    write_fraction: f64,
    /// Move-to-front LRU stack of recently used blocks (bounded).
    stack: Vec<u64>,
    next_alloc: u64,
}

impl StackDistanceKernel {
    fn new(region_bytes: u64, reuse: f64, mean_depth: f64, write_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&reuse), "reuse must be a probability");
        assert!(mean_depth >= 1.0, "mean_depth must be at least 1");
        assert!((0.0..=1.0).contains(&write_fraction), "write_fraction must be a probability");
        StackDistanceKernel {
            blocks: region_blocks(region_bytes),
            reuse,
            geo_p: 1.0 / mean_depth,
            write_fraction,
            stack: Vec::new(),
            next_alloc: 0,
        }
    }

    fn geometric(&self, rng: &mut Rng64) -> usize {
        // Inverse-CDF sampling of a geometric distribution on {0, 1, ...}.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (u.ln() / (1.0 - self.geo_p).ln()) as usize
    }
}

impl Kernel for StackDistanceKernel {
    fn pc_slots(&self) -> u32 {
        3 // 0: allocation, 1: shallow reuse, 2: deep reuse
    }

    fn region_bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    fn step(&mut self, rng: &mut Rng64) -> KernelStep {
        let kind = pick_kind(rng, self.write_fraction);
        if !self.stack.is_empty() && rng.gen_bool(self.reuse) {
            let depth = self.geometric(rng).min(self.stack.len() - 1);
            let block = self.stack.remove(depth);
            self.stack.insert(0, block);
            let pc_slot = if depth < 16 { 1 } else { 2 };
            return KernelStep { pc_slot, region_offset: block * BLOCK_BYTES, kind, dependent: false };
        }
        let block = self.next_alloc % self.blocks;
        self.next_alloc = self.next_alloc.wrapping_add(1);
        self.stack.insert(0, block);
        if self.stack.len() > STACK_DISTANCE_CAP {
            self.stack.pop();
        }
        KernelStep { pc_slot: 0, region_offset: block * BLOCK_BYTES, kind, dependent: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> Rng64 {
        Rng64::seed_from_u64(42)
    }

    fn run(spec: KernelSpec, n: usize) -> Vec<KernelStep> {
        let mut r = rng();
        let mut k = spec.instantiate(&mut r);
        (0..n).map(|_| k.step(&mut r)).collect()
    }

    #[test]
    fn streaming_touches_blocks_in_order() {
        let steps = run(KernelSpec::streaming(1 << 12), 64);
        let blocks: Vec<u64> = steps.iter().map(|s| s.region_offset / BLOCK_BYTES).collect();
        // 4 KiB region = 64 blocks, one touch each, sequential then wrap.
        assert_eq!(blocks, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_burst_uses_distinct_pc_slots() {
        let steps = run(KernelSpec::scan_burst(1 << 12, 3), 9);
        let slots: Vec<u32> = steps.iter().map(|s| s.pc_slot).collect();
        assert_eq!(slots, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        // Three touches stay within one block before moving on.
        assert_eq!(
            steps[0].region_offset / BLOCK_BYTES,
            steps[2].region_offset / BLOCK_BYTES
        );
        assert_ne!(
            steps[0].region_offset / BLOCK_BYTES,
            steps[3].region_offset / BLOCK_BYTES
        );
    }

    #[test]
    fn hot_set_stays_in_region() {
        let region = 1 << 14;
        let steps = run(KernelSpec::hot_set(region), 1000);
        assert!(steps.iter().all(|s| s.region_offset < region));
    }

    #[test]
    fn generational_last_touch_slot_is_terminal() {
        let touches = 4;
        let mut r = rng();
        let spec = KernelSpec::generational(1 << 20, touches, 8);
        let mut k = spec.instantiate(&mut r);
        // Track per-block touch history; every block that completes must have
        // seen pc slots 0..touches in order.
        let mut seen: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for _ in 0..10_000 {
            let s = k.step(&mut r);
            seen.entry(s.region_offset / BLOCK_BYTES).or_default().push(s.pc_slot);
        }
        let mut complete = 0;
        for slots in seen.values() {
            // A block history is one or more full generations plus a suffix.
            for chunk in slots.chunks(touches as usize) {
                if chunk.len() == touches as usize {
                    assert_eq!(chunk, (0..touches).collect::<Vec<_>>().as_slice());
                    complete += 1;
                }
            }
        }
        assert!(complete > 100, "expected many completed generations, saw {complete}");
    }

    #[test]
    fn adversarial_slots_are_not_sequential() {
        let steps = run(KernelSpec::adversarial(1 << 20, 4, 8), 1000);
        let sequential = steps
            .windows(4)
            .filter(|w| w.iter().enumerate().all(|(i, s)| s.pc_slot == i as u32))
            .count();
        // With random slots, exact 0,1,2,3 windows should be rare.
        assert!(sequential < 100, "adversarial kernel looks sequential: {sequential}");
    }

    #[test]
    fn pointer_chase_is_dependent_and_covers_region() {
        let steps = run(KernelSpec::pointer_chase(1 << 16), 4000);
        assert!(steps.iter().all(|s| s.dependent));
        let unique: std::collections::HashSet<u64> =
            steps.iter().map(|s| s.region_offset / BLOCK_BYTES).collect();
        // 64 KiB = 1024 blocks; a pseudo-random walk of 4000 steps should
        // touch most of them.
        assert!(unique.len() > 700, "walk covered only {} blocks", unique.len());
    }

    #[test]
    fn pointer_chase_revisits_when_asked() {
        let steps = run(KernelSpec::pointer_chase_with_revisit(1 << 16, 0.5), 2000);
        let revisits = steps.iter().filter(|s| s.pc_slot == 1).count();
        assert!(revisits > 500, "expected ~50% revisits, got {revisits}");
        assert!(steps.iter().filter(|s| s.pc_slot == 1).all(|s| !s.dependent));
    }

    #[test]
    fn stack_distance_reuse_rate_tracks_parameter() {
        let steps = run(KernelSpec::stack_distance(1 << 24, 0.7, 32.0), 20_000);
        let reuses = steps.iter().filter(|s| s.pc_slot != 0).count() as f64;
        let rate = reuses / steps.len() as f64;
        assert!((rate - 0.7).abs() < 0.05, "reuse rate {rate} far from 0.7");
    }

    #[test]
    fn classed_distinct_pools_have_terminal_slots() {
        // Two classes: 2-touch (slots 0..2) and 4-touch (slots 2..6).
        let mut r = rng();
        let spec = KernelSpec::classed(1 << 20, 64, vec![(1.0, 2), (1.0, 4)]);
        let mut k = spec.instantiate(&mut r);
        assert_eq!(k.pc_slots(), 6);
        let mut histories: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for _ in 0..20_000 {
            let s = k.step(&mut r);
            histories.entry(s.region_offset / BLOCK_BYTES).or_default().push(s.pc_slot);
        }
        // After the (staggered) initial generation, every completed
        // generation is exactly [0,1] or [2,3,4,5].
        let mut complete = 0;
        for h in histories.values() {
            // Skip the partial initial generation: class starts are 0 or 2.
            let mut i = match h.iter().position(|&s| s == 0 || s == 2) {
                Some(i) => i,
                None => continue,
            };
            while i < h.len() {
                if h[i] == 0 {
                    if i + 2 <= h.len() && h[i..].len() >= 2 && h[i + 1] == 1 {
                        complete += 1;
                        i += 2;
                    } else {
                        break; // truncated generation at the end
                    }
                } else if h[i] == 2 {
                    if i + 4 <= h.len() && h[i + 1..i + 4] == [3, 4, 5] {
                        complete += 1;
                        i += 4;
                    } else {
                        break;
                    }
                } else {
                    panic!("generation starting at unexpected slot {}", h[i]);
                }
            }
        }
        assert!(complete > 1000, "expected many completed generations, got {complete}");
    }

    #[test]
    fn classed_shared_prefix_overlaps_slots() {
        let mut r = rng();
        // Small region so block numbers recycle and death→rebirth pairs
        // appear within one block's history.
        let spec = KernelSpec::classed_ambiguous(1 << 13, 64, vec![(1.0, 2), (1.0, 4)]);
        let mut k = spec.instantiate(&mut r);
        assert_eq!(k.pc_slots(), 4);
        // Slot 1 must be both terminal (class 2) and mid-life (class 4):
        // check that accesses with slot 1 are followed sometimes by slot 2
        // on the same block and sometimes by slot 0 (new generation).
        let mut after_slot1: std::collections::HashMap<u64, Vec<u32>> = Default::default();
        for _ in 0..20_000 {
            let s = k.step(&mut r);
            after_slot1.entry(s.region_offset / BLOCK_BYTES).or_default().push(s.pc_slot);
        }
        let mut continued = 0;
        let mut died = 0;
        for h in after_slot1.values() {
            for w in h.windows(2) {
                if w[0] == 1 {
                    if w[1] == 2 {
                        continued += 1;
                    } else if w[1] == 0 {
                        died += 1;
                    }
                }
            }
        }
        assert!(continued > 100, "slot 1 never continued: {continued}");
        assert!(died > 100, "slot 1 never terminal: {died}");
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn classed_requires_classes() {
        let mut r = rng();
        let _ = KernelSpec::classed(1 << 12, 4, vec![]).instantiate(&mut r);
    }

    #[test]
    fn kernels_respect_declared_regions_and_slots() {
        let specs = vec![
            KernelSpec::streaming(1 << 16),
            KernelSpec::scan_burst(1 << 16, 3),
            KernelSpec::hot_set(1 << 14),
            KernelSpec::generational(1 << 18, 5, 16),
            KernelSpec::adversarial(1 << 18, 5, 16),
            KernelSpec::classed(1 << 18, 16, vec![(2.0, 1), (1.0, 3), (0.5, 6)]),
            KernelSpec::classed_ambiguous(1 << 18, 16, vec![(1.0, 2), (1.0, 5)]),
            KernelSpec::pointer_chase(1 << 16),
            KernelSpec::stack_distance(1 << 20, 0.5, 16.0),
        ];
        for spec in specs {
            let mut r = rng();
            let mut k = spec.instantiate(&mut r);
            let region = k.region_bytes();
            let slots = k.pc_slots();
            for _ in 0..2000 {
                let s = k.step(&mut r);
                assert!(s.region_offset < region, "{spec:?} escaped its region");
                assert!(s.pc_slot < slots, "{spec:?} used undeclared pc slot");
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_is_rejected() {
        let _ = KernelSpec::streaming(1 << 12).weight(0.0);
    }

    #[test]
    #[should_panic(expected = "region must hold at least one block")]
    fn empty_region_is_rejected() {
        let mut r = rng();
        let _ = KernelSpec::streaming(1).instantiate(&mut r);
    }

    #[test]
    #[should_panic(expected = "live_slots")]
    fn generational_live_slots_must_fit_region() {
        let mut r = rng();
        let _ = KernelSpec::generational(1 << 7, 2, 100).instantiate(&mut r);
    }
}
