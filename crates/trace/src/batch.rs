//! Columnar instruction batches — the zero-copy counterpart of
//! [`InstrStream`](crate::source::InstrStream).
//!
//! The per-record stream API costs one virtual call, one `Result`
//! discriminant and one `Option<MemRef>` construction per instruction;
//! at `.sdbt` v2 decode rates (>100M records/sec) that overhead dominates.
//! This module defines the batch-of-columns view consumed by the recording
//! and replay front doors instead: three parallel columns (flags, program
//! counters, addresses) spanning one decoded chunk, borrowed from whoever
//! owns the backing storage — a fully-buffered trace file, a reader's
//! scratch buffer, or a generator's fill buffer.
//!
//! The flags byte is the **canonical record encoding** shared by every
//! trace container version: `sdbp-traceio` re-exports [`FLAG_MEM`],
//! [`FLAG_WRITE`] and [`FLAG_DEPENDENT`] rather than defining its own, so
//! a v1 varint record, a v2 column entry and an in-memory batch all agree
//! bit-for-bit. Non-memory records carry an address column entry of `0`
//! (ignored on decode; the flags byte alone decides whether a record
//! references memory).

use crate::access::{AccessKind, Addr, Instr, MemRef, Pc};

/// Flags byte: the record is a memory instruction.
pub const FLAG_MEM: u8 = 1 << 0;
/// Flags byte: the memory reference is a write.
pub const FLAG_WRITE: u8 = 1 << 1;
/// Flags byte: the next instruction depends on this load (pointer chase).
pub const FLAG_DEPENDENT: u8 = 1 << 2;
/// Any set bit outside this mask marks a corrupt or future record.
pub const FLAG_MASK: u8 = FLAG_MEM | FLAG_WRITE | FLAG_DEPENDENT;

/// Encodes an instruction's kind bits into the canonical flags byte.
pub fn instr_flags(instr: &Instr) -> u8 {
    match instr.mem {
        None => 0,
        Some(m) => {
            let mut flags = FLAG_MEM;
            if m.kind.is_write() {
                flags |= FLAG_WRITE;
            }
            if m.dependent {
                flags |= FLAG_DEPENDENT;
            }
            flags
        }
    }
}

/// Reassembles an instruction from one row of the three columns.
///
/// Callers that obtained the columns from a validated container may rely
/// on `flags` having no bits outside [`FLAG_MASK`]; unknown bits are
/// ignored here (validation is the producer's job, so this stays branch-
/// light on the hot path).
#[inline]
pub fn instr_from_columns(flags: u8, pc: u64, addr: u64) -> Instr {
    if flags & FLAG_MEM == 0 {
        return Instr::non_mem(Pc::new(pc));
    }
    let kind = if flags & FLAG_WRITE != 0 { AccessKind::Write } else { AccessKind::Read };
    Instr::mem(
        Pc::new(pc),
        MemRef { addr: Addr::new(addr), kind, dependent: flags & FLAG_DEPENDENT != 0 },
    )
}

/// One decoded batch: three parallel columns over the same records.
///
/// Borrowed from the producer's storage — no per-record allocation, no
/// copies beyond whatever byte→`u64` widening the container required.
/// Invariant (enforced by [`InstrBatch::new`]): all three slices have the
/// same length, and every flags byte is within [`FLAG_MASK`].
#[derive(Copy, Clone, Debug)]
pub struct InstrBatch<'a> {
    flags: &'a [u8],
    pcs: &'a [u64],
    addrs: &'a [u64],
}

impl<'a> InstrBatch<'a> {
    /// Assembles a batch from three equal-length columns.
    ///
    /// Returns `None` when the column lengths disagree — the caller
    /// (a container decoder) turns that into its own typed error.
    pub fn new(flags: &'a [u8], pcs: &'a [u64], addrs: &'a [u64]) -> Option<Self> {
        if flags.len() != pcs.len() || flags.len() != addrs.len() {
            return None;
        }
        Some(InstrBatch { flags, pcs, addrs })
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// The flags column.
    pub fn flags(&self) -> &'a [u8] {
        self.flags
    }

    /// The program-counter column.
    pub fn pcs(&self) -> &'a [u64] {
        self.pcs
    }

    /// The address column (entry `0` for non-memory records).
    pub fn addrs(&self) -> &'a [u64] {
        self.addrs
    }

    /// Reassembles record `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<Instr> {
        let flags = *self.flags.get(i)?;
        let pc = *self.pcs.get(i)?;
        let addr = *self.addrs.get(i)?;
        Some(instr_from_columns(flags, pc, addr))
    }

    /// Iterates the batch as assembled [`Instr`]s (for consumers that
    /// have not been converted to columnar access yet).
    pub fn iter(&self) -> impl Iterator<Item = Instr> + 'a {
        let (flags, pcs, addrs) = (self.flags, self.pcs, self.addrs);
        flags
            .iter()
            .zip(pcs.iter())
            .zip(addrs.iter())
            .map(|((&f, &pc), &addr)| instr_from_columns(f, pc, addr))
    }
}

/// A lending producer of instruction batches.
///
/// Each call invalidates the previous batch (it may borrow the producer's
/// scratch buffers), which is exactly the shape a chunked container
/// decoder needs — decode one chunk into reused storage, hand out a view,
/// repeat. `Ok(None)` marks a clean end of stream.
pub trait InstrBatcher: Send {
    /// Decodes and returns the next batch, or `Ok(None)` at end of
    /// stream.
    ///
    /// # Errors
    ///
    /// Returns a message when the underlying container is corrupt or
    /// unreadable; the typed taxonomy lives with the container format.
    fn next_batch(&mut self) -> Result<Option<InstrBatch<'_>>, String>;
}

/// A boxed batch producer, the batch-mode analogue of
/// [`InstrStream`](crate::source::InstrStream).
pub type BatchStream<'a> = Box<dyn InstrBatcher + 'a>;

/// Owned column storage: the reusable fill target for producers that
/// build batches rather than borrow them (generators, v1 adapters).
#[derive(Clone, Default, Debug)]
pub struct ColumnBuf {
    /// Flags column (one byte per record).
    pub flags: Vec<u8>,
    /// Program-counter column.
    pub pcs: Vec<u64>,
    /// Address column (`0` for non-memory records).
    pub addrs: Vec<u64>,
}

impl ColumnBuf {
    /// Empties all three columns, keeping their capacity.
    pub fn clear(&mut self) {
        self.flags.clear();
        self.pcs.clear();
        self.addrs.clear();
    }

    /// Appends one instruction as a column row.
    pub fn push(&mut self, instr: &Instr) {
        self.flags.push(instr_flags(instr));
        self.pcs.push(instr.pc.raw());
        self.addrs.push(instr.mem.map_or(0, |m| m.addr.raw()));
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Views the buffered rows as a batch.
    pub fn as_batch(&self) -> InstrBatch<'_> {
        // The three columns grow in lockstep (`push`), so lengths agree.
        InstrBatch { flags: &self.flags, pcs: &self.pcs, addrs: &self.addrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::non_mem(Pc::new(0x400_000)),
            Instr::mem(Pc::new(0x400_004), MemRef::read(Addr::new(0x1_0000_0040))),
            Instr::mem(Pc::new(0x400_008), MemRef::write(Addr::new(0x2_0000_0000))),
            Instr::mem(Pc::new(0x400_00c), MemRef::read(Addr::new(u64::MAX)).dependent()),
        ]
    }

    #[test]
    fn columns_round_trip_every_kind() {
        let instrs = sample_instrs();
        let mut buf = ColumnBuf::default();
        for i in &instrs {
            buf.push(i);
        }
        let batch = buf.as_batch();
        assert_eq!(batch.len(), instrs.len());
        let back: Vec<_> = batch.iter().collect();
        assert_eq!(back, instrs);
        for (i, want) in instrs.iter().enumerate() {
            assert_eq!(batch.get(i).as_ref(), Some(want));
        }
        assert_eq!(batch.get(instrs.len()), None);
    }

    #[test]
    fn flags_encode_matches_mask() {
        for i in sample_instrs() {
            assert_eq!(instr_flags(&i) & !FLAG_MASK, 0);
        }
        assert_eq!(instr_flags(&Instr::non_mem(Pc::new(1))), 0);
        let w = Instr::mem(Pc::new(1), MemRef::write(Addr::new(2)));
        assert_eq!(instr_flags(&w), FLAG_MEM | FLAG_WRITE);
    }

    #[test]
    fn mismatched_columns_are_rejected() {
        let flags = [0u8; 3];
        let pcs = [0u64; 3];
        let short = [0u64; 2];
        assert!(InstrBatch::new(&flags, &pcs, &short).is_none());
        assert!(InstrBatch::new(&flags, &pcs, &[0u64; 3]).is_some());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = ColumnBuf::default();
        for i in sample_instrs() {
            buf.push(&i);
        }
        let cap = buf.pcs.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.pcs.capacity(), cap);
    }
}
