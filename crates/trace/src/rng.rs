//! A small, dependency-free deterministic RNG.
//!
//! The sandbox builds offline, so the crates.io `rand` stack is not
//! available; every stochastic component of the simulator (synthetic
//! kernels, randomized replacement policies, test input generation) seeds
//! one of these instead. The generator is SplitMix64 (Steele, Lea &
//! Flood, OOPSLA 2014): a 64-bit counter stepped by the golden-ratio
//! increment and scrambled by a variant of the MurmurHash3 finalizer. It
//! is statistically strong for simulation purposes, trivially seedable,
//! and — crucially for reproducibility — a pure function of its seed.
//!
//! The API deliberately mirrors the subset of `rand` the repo used
//! (`seed_from_u64`, `gen_range`, `gen_bool`, `shuffle`) so call sites
//! read identically.
//!
//! ```
//! use sdbp_trace::rng::Rng64;
//! let mut a = Rng64::seed_from_u64(7);
//! let mut b = Rng64::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(0u64..10) < 10);
//! ```

/// Golden-ratio increment of the SplitMix64 counter.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Deterministic 64-bit generator (SplitMix64).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator whose entire stream is determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Produces the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits of randomness).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.gen_f64() < p
    }

    /// A uniform sample from `range` (`lo..hi`, half-open).
    ///
    /// Implemented for `u8`, `u16`, `u32`, `u64`, `usize` and `f64`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// Splits off an independent child generator for stream `stream_id`.
    ///
    /// The child's sequence is a pure function of `(seed, stream_id)`:
    /// distinct stream ids yield statistically independent streams, the
    /// parent is not advanced, and re-forking the same id always returns
    /// the same generator. This is SplitMix64's `split` operation — the
    /// stream id is spread over the counter by the golden-ratio increment
    /// and pushed through the output scrambler twice, so even adjacent ids
    /// (0, 1, 2, ...) land far apart in the state space. Use this instead
    /// of hand-XORing offsets into seeds: XOR salts can collide or cancel
    /// (`a ^ b == c ^ d`), forked streams cannot.
    ///
    /// ```
    /// use sdbp_trace::rng::Rng64;
    /// let root = Rng64::seed_from_u64(7);
    /// let mut a = root.fork(0);
    /// let mut b = root.fork(1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// assert_eq!(root.fork(0), root.fork(0));
    /// ```
    #[must_use]
    pub fn fork(&self, stream_id: u64) -> Rng64 {
        let mut child =
            Rng64 { state: self.state.wrapping_add(stream_id.wrapping_mul(GOLDEN_GAMMA)) };
        // Two scrambling steps decorrelate the child from both the parent
        // stream and siblings with nearby ids.
        let s = child.next_u64();
        let t = child.next_u64();
        Rng64 { state: s ^ t.rotate_left(32) }
    }

    /// Fisher–Yates shuffle of `xs`.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }
}

/// Types [`Rng64::gen_range`] can sample uniformly from a half-open range.
pub trait SampleRange: Copy {
    /// Draws a uniform sample from `[lo, hi)`.
    fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self;
}

/// Unbiased integer sampling from `[0, span)` via Lemire-style widening
/// multiply with rejection.
fn uniform_u64(rng: &mut Rng64, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection threshold: multiples of span fit below it.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let x = lo + rng.gen_f64() * (hi - lo);
        // Guard against rounding up to the (excluded) upper bound.
        if x < hi {
            x
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_covers_the_range_roughly_uniformly() {
        let mut r = Rng64::seed_from_u64(9);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.gen_range(0usize..8)] += 1;
        }
        let expect = n as f64 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} count {c} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng64::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.3)).count() as f64;
        let rate = hits / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} far from 0.3");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left slice in order");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Rng64::seed_from_u64(0).gen_range(4u32..4);
    }

    #[test]
    fn fork_is_deterministic_and_does_not_advance_parent() {
        let parent = Rng64::seed_from_u64(99);
        let before = parent.clone();
        let mut a = parent.fork(3);
        let mut b = parent.fork(3);
        assert_eq!(parent, before, "fork must not mutate the parent");
        assert_eq!(
            (0..50).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..50).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forked_streams_are_distinct_across_ids_and_seeds() {
        // All (seed, stream) pairs over a small grid must yield distinct
        // first outputs — in particular the XOR-collision pattern
        // (s^a == s'^a') that hand-offset salting is prone to must not
        // produce colliding streams.
        let mut firsts = std::collections::HashSet::new();
        for seed in 0..16u64 {
            let root = Rng64::seed_from_u64(seed);
            for stream in 0..16u64 {
                assert!(
                    firsts.insert(root.fork(stream).next_u64()),
                    "collision at seed {seed} stream {stream}"
                );
            }
        }
    }

    #[test]
    fn forked_stream_differs_from_parent_stream() {
        let root = Rng64::seed_from_u64(1234);
        let mut parent = root.clone();
        let mut child = root.fork(0);
        let p: Vec<u64> = (0..20).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..20).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
