//! Core access types: program counters, addresses, and instructions.
//!
//! Addresses are byte-granular [`Addr`] values; caches operate on
//! [`BlockAddr`] values obtained by shifting out the block-offset bits.
//! The two are distinct newtypes so a byte address can never be used as a
//! block address by mistake.

use std::fmt;

/// Log2 of the cache block size in bytes (64 B blocks, as in the paper).
pub const BLOCK_BITS: u32 = 6;

/// Cache block size in bytes.
pub const BLOCK_BYTES: u64 = 1 << BLOCK_BITS;

/// A program counter (the address of a memory access instruction).
///
/// Dead block predictors key their tables on (hashes of) this value, so it is
/// kept distinct from data addresses at the type level.
///
/// ```
/// use sdbp_trace::Pc;
/// let pc = Pc::new(0x40_1234);
/// assert_eq!(pc.truncated(15), 0x1234);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw instruction address.
    pub const fn new(raw: u64) -> Self {
        Pc(raw)
    }

    /// Returns the raw instruction address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the low `bits` bits, as used for partial-PC storage in the
    /// sampler (the paper stores 15-bit partial PCs).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn truncated(self, bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        if bits == 64 {
            self.0
        } else {
            self.0 & ((1u64 << bits) - 1)
        }
    }
}

impl fmt::Debug for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pc({:#x})", self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Pc {
    fn from(raw: u64) -> Self {
        Pc::new(raw)
    }
}

/// A byte-granular data address.
///
/// ```
/// use sdbp_trace::Addr;
/// let a = Addr::new(0x1040);
/// assert_eq!(a.block().raw(), 0x41);
/// assert_eq!(a.offset(), 0);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_BITS)
    }

    /// Byte offset of this address within its cache block.
    pub const fn offset(self) -> u64 {
        self.0 & (BLOCK_BYTES - 1)
    }

    /// Returns this address displaced by `bytes`.
    pub const fn offset_by(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr::new(raw)
    }
}

/// A block-granular address (a byte address with the offset bits removed).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw block number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte in this block.
    pub const fn first_byte(self) -> Addr {
        Addr(self.0 << BLOCK_BITS)
    }

    /// Cache set index for a cache with `sets` sets (must be a power of two).
    pub fn set_index(self, sets: usize) -> usize {
        debug_assert!(sets.is_power_of_two());
        (self.0 as usize) & (sets - 1)
    }

    /// Tag for a cache with `sets` sets (must be a power of two).
    pub fn tag(self, sets: usize) -> u64 {
        debug_assert!(sets.is_power_of_two());
        self.0 >> sets.trailing_zeros()
    }

    /// Returns the low `bits` bits of the block number, as used for the
    /// sampler's 15-bit partial tags.
    pub fn truncated(self, bits: u32) -> u64 {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        if bits == 64 {
            self.0
        } else {
            self.0 & ((1u64 << bits) - 1)
        }
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(raw: u64) -> Self {
        BlockAddr::new(raw)
    }
}

/// Whether a memory reference reads or writes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A memory reference performed by one instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemRef {
    /// Byte address referenced.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// True if the *next* instruction's address depends on the loaded value
    /// (pointer chasing). The timing model serializes dependent loads, which
    /// destroys memory-level parallelism exactly as in mcf-like workloads.
    pub dependent: bool,
}

impl MemRef {
    /// Creates an independent read reference.
    pub const fn read(addr: Addr) -> Self {
        MemRef { addr, kind: AccessKind::Read, dependent: false }
    }

    /// Creates an independent write reference.
    pub const fn write(addr: Addr) -> Self {
        MemRef { addr, kind: AccessKind::Write, dependent: false }
    }

    /// Marks this reference as address-generating for the next instruction.
    pub const fn dependent(mut self) -> Self {
        self.dependent = true;
        self
    }
}

/// One dynamic instruction: a program counter plus an optional memory
/// reference. Non-memory instructions still advance the pipeline and the
/// instruction counts used for MPKI.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// The instruction's address.
    pub pc: Pc,
    /// The memory reference performed, if any.
    pub mem: Option<MemRef>,
}

impl Instr {
    /// A non-memory instruction at `pc`.
    pub const fn non_mem(pc: Pc) -> Self {
        Instr { pc, mem: None }
    }

    /// A memory instruction at `pc` performing `mem`.
    pub const fn mem(pc: Pc, mem: MemRef) -> Self {
        Instr { pc, mem: Some(mem) }
    }

    /// True if this instruction references memory.
    pub const fn is_mem(&self) -> bool {
        self.mem.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address_strips_offset() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.block().raw(), 0xdead_beef >> 6);
        assert_eq!(a.block().first_byte().raw(), 0xdead_beef & !0x3f);
    }

    #[test]
    fn offset_within_block() {
        assert_eq!(Addr::new(0x1000).offset(), 0);
        assert_eq!(Addr::new(0x103f).offset(), 0x3f);
        assert_eq!(Addr::new(0x1040).offset(), 0);
    }

    #[test]
    fn set_index_and_tag_reassemble_block() {
        let b = BlockAddr::new(0x1234_5678);
        let sets = 2048;
        let set = b.set_index(sets);
        let tag = b.tag(sets);
        assert_eq!(tag << 11 | set as u64, b.raw());
    }

    #[test]
    fn pc_truncation_matches_mask() {
        let pc = Pc::new(0xffff_ffff_ffff_ffff);
        assert_eq!(pc.truncated(15), 0x7fff);
        assert_eq!(pc.truncated(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=64")]
    fn pc_truncation_rejects_zero_bits() {
        let _ = Pc::new(1).truncated(0);
    }

    #[test]
    fn dependent_builder_sets_flag() {
        let m = MemRef::read(Addr::new(0x40)).dependent();
        assert!(m.dependent);
        assert_eq!(m.kind, AccessKind::Read);
        assert!(!MemRef::write(Addr::new(0x40)).dependent);
        assert!(MemRef::write(Addr::new(0x40)).kind.is_write());
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", Pc::new(0x10)), "0x10");
        assert_eq!(format!("{}", Addr::new(0x10)), "0x10");
        assert_eq!(format!("{}", BlockAddr::new(0x10)), "0x10");
        assert_eq!(format!("{:?}", Pc::new(0x10)), "Pc(0x10)");
        assert_eq!(format!("{}", AccessKind::Read), "read");
    }

    #[test]
    fn offset_by_wraps() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.offset_by(1).raw(), 0);
    }
}
