//! Memory access traces and synthetic workload generation.
//!
//! This crate provides the instruction/memory-reference model consumed by the
//! cache hierarchy simulator (`sdbp-cache`) and the synthetic workload
//! *kernels* from which the benchmark suite (`sdbp-workloads`) is composed.
//!
//! # Why synthetic workloads?
//!
//! The paper ("Sampling Dead Block Prediction for Last-Level Caches",
//! MICRO-43 2010) evaluates on SPEC CPU 2006 SimPoint traces, which are not
//! redistributable. Dead block predictors learn a correlation between the
//! **program counter of the last instruction to touch a cache block** and the
//! block's death, so a faithful substitute must provide exactly that signal:
//! distinct PCs whose accesses terminate block lifetimes with distinct
//! probabilities, embedded in realistic mixes of streaming, looping, and
//! pointer-chasing behaviour. The [`kernel`] module provides those reuse
//! archetypes and [`synthetic`] composes them into full instruction streams.
//!
//! # Example
//!
//! ```
//! use sdbp_trace::kernel::{KernelSpec, ReusePattern};
//! use sdbp_trace::synthetic::{TraceBuilder};
//!
//! // A workload that streams over 8 MiB (dead-on-arrival blocks) while a
//! // small 64 KiB hot loop stays live.
//! let trace = TraceBuilder::new(0x5eed)
//!     .memory_fraction(0.35)
//!     .kernel(KernelSpec::streaming(8 << 20).weight(3.0))
//!     .kernel(KernelSpec::hot_set(64 << 10).weight(1.0))
//!     .build();
//! let instrs: Vec<_> = trace.take(1000).collect();
//! assert_eq!(instrs.len(), 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod batch;
pub mod kernel;
pub mod rng;
pub mod source;
pub mod stats;
pub mod synthetic;

pub use access::{AccessKind, Addr, BlockAddr, Instr, MemRef, Pc};
pub use batch::{BatchStream, ColumnBuf, InstrBatch, InstrBatcher};
pub use source::{GeneratorSource, InstrStream, TraceSource};
pub use synthetic::{SyntheticTrace, TraceBuilder};
