//! Summary statistics over instruction streams.

use crate::access::{Instr, BLOCK_BYTES};
// sdbp-allow(deterministic-iteration): distinct-block counting is insert + len only
use std::collections::HashSet;

/// Aggregate statistics for a finite prefix of an instruction stream.
///
/// ```
/// use sdbp_trace::{TraceBuilder, kernel::KernelSpec, stats::TraceStats};
/// let trace = TraceBuilder::new(1).kernel(KernelSpec::hot_set(4096)).build();
/// let stats = TraceStats::measure(trace.take(10_000));
/// assert_eq!(stats.instructions, 10_000);
/// assert!(stats.footprint_bytes() <= 4096);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceStats {
    /// Total instructions observed.
    pub instructions: u64,
    /// Memory-referencing instructions.
    pub mem_refs: u64,
    /// Loads.
    pub reads: u64,
    /// Stores.
    pub writes: u64,
    /// Loads flagged as address-generating (pointer chasing).
    pub dependent_loads: u64,
    /// Distinct cache blocks touched.
    pub unique_blocks: u64,
}

impl TraceStats {
    /// Consumes an instruction stream and accumulates statistics.
    pub fn measure<I: IntoIterator<Item = Instr>>(instrs: I) -> Self {
        let mut stats = TraceStats::default();
        // sdbp-allow(deterministic-iteration): insert + len only; never iterated
        let mut blocks: HashSet<u64> = HashSet::new();
        for i in instrs {
            stats.instructions += 1;
            if let Some(m) = i.mem {
                stats.mem_refs += 1;
                if m.kind.is_write() {
                    stats.writes += 1;
                } else {
                    stats.reads += 1;
                }
                if m.dependent {
                    stats.dependent_loads += 1;
                }
                blocks.insert(m.addr.block().raw());
            }
        }
        stats.unique_blocks = blocks.len() as u64;
        stats
    }

    /// Total data footprint in bytes (unique blocks × block size).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks * BLOCK_BYTES
    }

    /// Fraction of instructions that reference memory.
    pub fn memory_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.mem_refs as f64 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Addr, MemRef, Pc};

    #[test]
    fn counts_are_consistent() {
        let instrs = vec![
            Instr::non_mem(Pc::new(1)),
            Instr::mem(Pc::new(2), MemRef::read(Addr::new(0x00))),
            Instr::mem(Pc::new(3), MemRef::write(Addr::new(0x40))),
            Instr::mem(Pc::new(4), MemRef::read(Addr::new(0x41)).dependent()),
        ];
        let s = TraceStats::measure(instrs);
        assert_eq!(s.instructions, 4);
        assert_eq!(s.mem_refs, 3);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.dependent_loads, 1);
        // 0x40 and 0x41 share a block.
        assert_eq!(s.unique_blocks, 2);
        assert_eq!(s.footprint_bytes(), 128);
        assert!((s.memory_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let s = TraceStats::measure(std::iter::empty());
        assert_eq!(s, TraceStats::default());
        assert_eq!(s.memory_fraction(), 0.0);
        assert_eq!(s.footprint_bytes(), 0);
    }
}
