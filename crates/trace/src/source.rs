//! [`TraceSource`] — one abstraction over every way an instruction stream
//! can reach the simulator.
//!
//! The recording pipeline (`sdbp-cache`'s recorder, the harness, every
//! `sdbp-engine` job) does not care whether instructions come from an
//! in-memory synthetic generator or are streamed off a recorded `.sdbt`
//! trace file. This trait captures exactly what those consumers need:
//! a workload name, an optional finite length, and the ability to open a
//! fresh pass over the stream from the beginning.
//!
//! Streaming sources can fail mid-stream (I/O error, corrupted chunk), so
//! the items are `Result`s; infallible sources like
//! [`SyntheticTrace`](crate::SyntheticTrace) simply never yield `Err`.
//! Errors are plain strings at this boundary — the typed error taxonomy
//! lives with the file format (`sdbp-traceio`), and this crate stays at
//! the bottom of the dependency graph.

use crate::access::Instr;
use crate::batch::BatchStream;
use std::fmt;

/// A fresh pass over a source's instruction stream.
///
/// Boxed and `Send` so a stream can be opened inside an `sdbp-engine`
/// worker job.
pub type InstrStream<'a> = Box<dyn Iterator<Item = Result<Instr, String>> + Send + 'a>;

/// A (re-)openable source of instruction streams.
///
/// Implementations must be deterministic: two calls to [`open`] yield
/// identical streams, which is what makes `record → replay` byte-exact.
///
/// [`open`]: TraceSource::open
pub trait TraceSource: fmt::Debug + Send {
    /// Human-readable workload name (benchmark name in result tables).
    fn name(&self) -> &str;

    /// Number of instructions in the stream, if finite and known up
    /// front (recorded files know; infinite generators return `None`).
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Opens a fresh stream from the beginning.
    ///
    /// # Errors
    ///
    /// Returns a message when the source cannot be opened at all (e.g. a
    /// missing or malformed trace file).
    fn open(&self) -> Result<InstrStream<'_>, String>;

    /// Opens a fresh *batched* pass over the stream, when the source has
    /// a columnar fast path.
    ///
    /// Returns `Ok(None)` when only the per-record stream is available
    /// (the default); consumers fall back to [`open`](TraceSource::open).
    /// A batched pass must yield exactly the same records in the same
    /// order as the per-record stream — the record→replay byte-identity
    /// contract does not care which door the records came through.
    ///
    /// # Errors
    ///
    /// Returns a message when the source advertises batches but cannot
    /// be opened (e.g. a corrupt trace file).
    fn open_batched(&self) -> Result<Option<BatchStream<'_>>, String> {
        Ok(None)
    }
}

/// A synthetic source: a named, seeded generator function.
///
/// Wraps a closure producing a fresh infinite iterator per call, so the
/// benchmark suite (which lives above this crate) can hand its workloads
/// to any [`TraceSource`] consumer without a dependency cycle.
///
/// ```
/// use sdbp_trace::kernel::KernelSpec;
/// use sdbp_trace::source::{GeneratorSource, TraceSource};
/// use sdbp_trace::TraceBuilder;
///
/// let src = GeneratorSource::new("hot", || {
///     TraceBuilder::new(7).kernel(KernelSpec::hot_set(4096)).build()
/// });
/// let first: Vec<_> = src.open().unwrap().take(10).collect();
/// let again: Vec<_> = src.open().unwrap().take(10).collect();
/// assert_eq!(first.len(), 10);
/// assert!(first.iter().zip(&again).all(|(a, b)| a == b));
/// ```
pub struct GeneratorSource<F> {
    name: String,
    build: F,
}

impl<F, I> GeneratorSource<F>
where
    F: Fn() -> I + Send,
    I: Iterator<Item = Instr> + Send + 'static,
{
    /// Wraps `build`, a function returning a fresh iterator per call.
    pub fn new(name: impl Into<String>, build: F) -> Self {
        GeneratorSource { name: name.into(), build }
    }
}

impl<F> fmt::Debug for GeneratorSource<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GeneratorSource").field("name", &self.name).finish_non_exhaustive()
    }
}

impl<F, I> TraceSource for GeneratorSource<F>
where
    F: Fn() -> I + Send,
    I: Iterator<Item = Instr> + Send + 'static,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn open(&self) -> Result<InstrStream<'_>, String> {
        Ok(Box::new((self.build)().map(Ok)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelSpec;
    use crate::TraceBuilder;

    fn hot_source() -> impl TraceSource {
        GeneratorSource::new("hot", || {
            TraceBuilder::new(11).kernel(KernelSpec::hot_set(1 << 14)).build()
        })
    }

    #[test]
    fn generator_source_reopens_identically() {
        let src = hot_source();
        assert_eq!(src.name(), "hot");
        assert_eq!(src.len_hint(), None);
        let a: Vec<_> = src.open().unwrap().take(500).map(Result::unwrap).collect();
        let b: Vec<_> = src.open().unwrap().take(500).map(Result::unwrap).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn generator_source_is_object_safe() {
        let boxed: Box<dyn TraceSource> = Box::new(hot_source());
        assert!(boxed.open().unwrap().next().is_some());
    }
}
