//! Composition of [`kernel`](crate::kernel) archetypes into full instruction
//! streams.
//!
//! A [`SyntheticTrace`] is an infinite `Iterator<Item = Instr>`: callers take
//! as many instructions as their simulation budget allows. Kernel PC slots
//! and address regions are mapped onto disjoint global ranges so that two
//! kernels can never alias, and every memory instruction is surrounded by
//! non-memory instructions according to the configured memory fraction.

use crate::access::{Addr, Instr, MemRef, Pc};
use crate::kernel::{Kernel, KernelSpec};
use crate::rng::Rng64;
use std::fmt;

/// Base virtual address for kernel data regions.
const DATA_BASE: u64 = 0x1_0000_0000;
/// Alignment (and minimum spacing) between kernel regions.
const REGION_ALIGN: u64 = 1 << 26; // 64 MiB
/// Base PC for synthetic code.
const CODE_BASE: u64 = 0x40_0000;
/// PC space reserved per kernel (64 Ki instruction slots).
const KERNEL_CODE_SPAN: u64 = 0x4_0000;
/// Scatters a kernel's PC slot across its 64 Ki-slot code span, salted per
/// kernel. Synthetic PCs are thereby spread like real text addresses
/// rather than packed sequentially — predictors that hash, sum, or
/// truncate PCs see realistic dispersion, and two kernels' slots never
/// alias structurally after 15-bit truncation.
fn scatter_pc_slot(slot: u32, kernel_salt: u64) -> u64 {
    let x = (u64::from(slot) ^ kernel_salt.wrapping_mul(0x517c_c1b7_2722_0a95))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (x >> 24) & 0xffff
}
/// Number of distinct PCs used for non-memory instructions.
const NON_MEM_PCS: u64 = 16;

/// Builder for [`SyntheticTrace`].
///
/// ```
/// use sdbp_trace::{TraceBuilder, kernel::KernelSpec};
/// let mut trace = TraceBuilder::new(7)
///     .memory_fraction(0.5)
///     .kernel(KernelSpec::hot_set(4096))
///     .build();
/// let first = trace.find(|i| i.is_mem()).unwrap();
/// assert!(first.pc.raw() >= 0x40_0000);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub struct TraceBuilder {
    seed: u64,
    memory_fraction: f64,
    specs: Vec<KernelSpec>,
}

impl TraceBuilder {
    /// Starts a builder with the given RNG seed. The same seed and kernel
    /// list always produce the identical instruction stream.
    pub fn new(seed: u64) -> Self {
        TraceBuilder { seed, memory_fraction: 0.35, specs: Vec::new() }
    }

    /// Sets the fraction of instructions that reference memory
    /// (default 0.35, typical of SPEC CPU 2006 integer codes).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn memory_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "memory fraction must be in (0, 1], got {fraction}"
        );
        self.memory_fraction = fraction;
        self
    }

    /// Adds a kernel to the interleave.
    pub fn kernel(mut self, spec: KernelSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds several kernels at once.
    pub fn kernels<I: IntoIterator<Item = KernelSpec>>(mut self, specs: I) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Builds the infinite trace.
    ///
    /// Per-kernel randomness is split off the builder seed with
    /// [`Rng64::fork`]: kernel `idx` instantiates from stream `2*idx + 1`
    /// and draws its PC-scatter salt from stream `2*idx + 2`, while the
    /// interleaving stream itself runs on stream 0. Every sub-stream is
    /// therefore a pure function of `(seed, idx)` — no hand-offset
    /// constants, and adding a kernel never perturbs the streams of the
    /// kernels before it.
    ///
    /// # Panics
    ///
    /// Panics if no kernel was added.
    pub fn build(self) -> SyntheticTrace {
        assert!(!self.specs.is_empty(), "a trace needs at least one kernel");
        let root = Rng64::seed_from_u64(self.seed);
        let mut kernels = Vec::with_capacity(self.specs.len());
        let mut cume_weights = Vec::with_capacity(self.specs.len());
        let mut total = 0.0;
        let mut next_region = DATA_BASE;
        for (idx, spec) in self.specs.iter().enumerate() {
            let mut kernel_rng = root.fork(2 * idx as u64 + 1);
            let kernel = spec.instantiate(&mut kernel_rng);
            let span = kernel.region_bytes();
            let placed = KernelInstance {
                kernel,
                addr_base: next_region,
                pc_base: CODE_BASE + idx as u64 * KERNEL_CODE_SPAN,
                pc_salt: root.fork(2 * idx as u64 + 2).next_u64(),
            };
            // Round the next region base up so regions never overlap and
            // start block-aligned at a large power-of-two boundary.
            let spans = span.div_ceil(REGION_ALIGN);
            next_region += spans.max(1) * REGION_ALIGN;
            total += spec.weight;
            cume_weights.push(total);
            kernels.push(placed);
        }
        SyntheticTrace {
            kernels,
            cume_weights,
            total_weight: total,
            memory_fraction: self.memory_fraction,
            rng: root.fork(0),
            non_mem_pc_cursor: 0,
        }
    }
}

struct KernelInstance {
    kernel: Box<dyn Kernel>,
    addr_base: u64,
    pc_base: u64,
    /// Salt for [`scatter_pc_slot`], forked off the builder seed per
    /// kernel so two kernels (or two traces) never share PC structure.
    pc_salt: u64,
}

impl fmt::Debug for KernelInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelInstance")
            .field("kernel", &self.kernel)
            .field("addr_base", &format_args!("{:#x}", self.addr_base))
            .field("pc_base", &format_args!("{:#x}", self.pc_base))
            .field("pc_salt", &format_args!("{:#x}", self.pc_salt))
            .finish()
    }
}

/// An infinite, deterministic synthetic instruction stream.
///
/// Produced by [`TraceBuilder::build`]; see the [crate docs](crate) for an
/// end-to-end example.
#[derive(Debug)]
pub struct SyntheticTrace {
    kernels: Vec<KernelInstance>,
    cume_weights: Vec<f64>,
    total_weight: f64,
    memory_fraction: f64,
    rng: Rng64,
    non_mem_pc_cursor: u64,
}

impl SyntheticTrace {
    fn pick_kernel(&mut self) -> usize {
        if self.kernels.len() == 1 {
            return 0;
        }
        let x = self.rng.gen_range(0.0..self.total_weight);
        // Linear scan: kernel counts are tiny (< 10).
        self.cume_weights
            .iter()
            .position(|&w| x < w)
            .unwrap_or(self.kernels.len() - 1)
    }

    fn next_mem_instr(&mut self) -> Instr {
        let idx = self.pick_kernel();
        let inst = &mut self.kernels[idx];
        let step = inst.kernel.step(&mut self.rng);
        let scattered = scatter_pc_slot(step.pc_slot, inst.pc_salt);
        let pc = Pc::new(inst.pc_base + scattered * 4);
        let mem = MemRef {
            addr: Addr::new(inst.addr_base + step.region_offset),
            kind: step.kind,
            dependent: step.dependent,
        };
        Instr::mem(pc, mem)
    }

    fn next_non_mem_instr(&mut self) -> Instr {
        let pc = Pc::new(CODE_BASE - 0x1000 + (self.non_mem_pc_cursor % NON_MEM_PCS) * 4);
        self.non_mem_pc_cursor = self.non_mem_pc_cursor.wrapping_add(1);
        Instr::non_mem(pc)
    }
}

impl Iterator for SyntheticTrace {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        let is_mem = self.rng.gen_bool(self.memory_fraction);
        Some(if is_mem { self.next_mem_instr() } else { self.next_non_mem_instr() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessKind;

    fn simple(seed: u64) -> SyntheticTrace {
        TraceBuilder::new(seed)
            .kernel(KernelSpec::streaming(1 << 16).weight(1.0))
            .kernel(KernelSpec::hot_set(1 << 14).weight(2.0))
            .build()
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<Instr> = simple(11).take(5_000).collect();
        let b: Vec<Instr> = simple(11).take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_stream() {
        let a: Vec<Instr> = simple(11).take(5_000).collect();
        let b: Vec<Instr> = simple(12).take(5_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn memory_fraction_is_respected() {
        let trace = TraceBuilder::new(3)
            .memory_fraction(0.25)
            .kernel(KernelSpec::hot_set(1 << 14))
            .build();
        let n = 40_000;
        let mem = trace.take(n).filter(Instr::is_mem).count() as f64;
        let frac = mem / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "memory fraction {frac} far from 0.25");
    }

    #[test]
    fn kernel_regions_do_not_overlap() {
        let trace = TraceBuilder::new(3)
            .kernel(KernelSpec::streaming(1 << 20))
            .kernel(KernelSpec::hot_set(1 << 20))
            .build();
        let mut regions: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 2];
        // Region bases are 64 MiB apart; bucket addresses by base.
        for i in trace.take(50_000) {
            if let Some(m) = i.mem {
                let bucket = ((m.addr.raw() - super::DATA_BASE) / super::REGION_ALIGN) as usize;
                assert!(bucket < 2, "address outside any kernel region");
                regions[bucket].insert(m.addr.block().raw());
            }
        }
        assert!(!regions[0].is_empty() && !regions[1].is_empty());
    }

    #[test]
    fn kernel_pcs_are_disjoint_from_non_mem_pcs() {
        let trace = simple(9);
        for i in trace.take(20_000) {
            match i.mem {
                Some(_) => assert!(i.pc.raw() >= CODE_BASE),
                None => assert!(i.pc.raw() < CODE_BASE),
            }
        }
    }

    #[test]
    fn weights_bias_kernel_selection() {
        // Kernel 1 (hot set) has twice the weight of kernel 0 (streaming).
        let trace = simple(5);
        let mut counts = [0usize; 2];
        for i in trace.take(60_000) {
            if let Some(m) = i.mem {
                let bucket = ((m.addr.raw() - super::DATA_BASE) / super::REGION_ALIGN) as usize;
                counts[bucket] += 1;
            }
        }
        let ratio = counts[1] as f64 / counts[0] as f64;
        assert!((ratio - 2.0).abs() < 0.2, "weight ratio {ratio} far from 2.0");
    }

    #[test]
    fn reads_and_writes_both_occur() {
        let trace = simple(17);
        let kinds: std::collections::HashSet<AccessKind> =
            trace.take(10_000).filter_map(|i| i.mem.map(|m| m.kind)).collect();
        assert!(kinds.contains(&AccessKind::Read));
        assert!(kinds.contains(&AccessKind::Write));
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_builder_panics() {
        let _ = TraceBuilder::new(0).build();
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn bad_memory_fraction_panics() {
        let _ = TraceBuilder::new(0).memory_fraction(0.0);
    }
}
