//! Cross-crate integration tests: trace → recorder → replay → timing, for
//! every policy in the experiment matrix.

use sdbp_suite::cache::recorder::{merge_streams, record, record_for_core};
use sdbp_suite::cache::replay::{replay, split_hits_by_core};
use sdbp_suite::cache::{Cache, CacheConfig};
use sdbp_suite::cpu::CoreModel;
use sdbp_suite::harness::runner::PolicyKind;
use sdbp_suite::workloads::{benchmark, mixes, suite};

const N: u64 = 200_000;

fn all_policies() -> Vec<PolicyKind> {
    let mut kinds = vec![PolicyKind::Lru];
    kinds.extend(PolicyKind::lru_comparison());
    kinds.extend(PolicyKind::random_comparison());
    kinds.extend(PolicyKind::ablation_ladder());
    kinds
}

#[test]
fn every_policy_runs_every_shape_consistently() {
    let bench = benchmark("456.hmmer").unwrap();
    let w = record(bench.name, bench.trace(), N);
    let llc = CacheConfig::new(256, 16); // small LLC keeps the test fast
    for policy in all_policies() {
        let mut cache = Cache::with_policy(llc, policy.build(llc, 1));
        let r = replay(&w.llc, &mut cache);
        assert_eq!(r.stats.accesses, w.llc.len() as u64, "{}", policy.label());
        assert_eq!(r.stats.hits + r.stats.misses, r.stats.accesses, "{}", policy.label());
        assert!(r.stats.bypasses <= r.stats.misses, "{}", policy.label());
        assert_eq!(
            r.stats.fills + r.stats.bypasses,
            r.stats.misses,
            "{}: every miss either fills or bypasses",
            policy.label()
        );
        let timing = CoreModel::default().simulate(&w.records, &r.hits);
        assert!(timing.ipc() > 0.0 && timing.ipc() <= 4.0, "{}", policy.label());
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let bench = benchmark("403.gcc").unwrap();
    let run = || {
        let w = record(bench.name, bench.trace(), N);
        let llc = CacheConfig::llc_2mb();
        let mut cache = Cache::with_policy(llc, PolicyKind::Sampler.build(llc, 1));
        let r = replay(&w.llc, &mut cache);
        let t = CoreModel::default().simulate(&w.records, &r.hits);
        (r.stats, t.cycles)
    };
    assert_eq!(run(), run());
}

#[test]
fn optimal_is_a_lower_bound_for_every_policy() {
    let bench = benchmark("462.libquantum").unwrap();
    let w = record(bench.name, bench.trace(), N);
    let llc = CacheConfig::new(512, 16);
    let optimal = sdbp_suite::optimal::simulate(&w.llc, llc);
    for policy in all_policies() {
        let mut cache = Cache::with_policy(llc, policy.build(llc, 1));
        let r = replay(&w.llc, &mut cache);
        assert!(
            optimal.misses <= r.stats.misses,
            "{} beat MIN: {} < {}",
            policy.label(),
            r.stats.misses,
            optimal.misses
        );
    }
}

#[test]
fn multicore_pipeline_conserves_accesses() {
    let mix = &mixes()[0];
    let workloads: Vec<_> = mix
        .benchmarks()
        .iter()
        .enumerate()
        .map(|(core, b)| record_for_core(b.name, b.trace_seeded(core as u64), N / 4, core as u8))
        .collect();
    let merged = merge_streams(&workloads);
    assert_eq!(merged.len(), workloads.iter().map(|w| w.llc.len()).sum::<usize>());

    let llc = CacheConfig::new(1024, 16);
    let mut cache = Cache::with_policy(llc, PolicyKind::Tadip.build(llc, 4));
    let r = replay(&merged, &mut cache);
    let per_core = split_hits_by_core(&merged, &r.hits, 4)
        .expect("replay hit map aligns with the merged stream");
    for (w, hits) in workloads.iter().zip(&per_core) {
        assert_eq!(w.llc.len(), hits.len());
        let t = CoreModel::default().simulate(&w.records, hits);
        assert!(t.cycles > 0);
    }
}

#[test]
fn whole_suite_records_nonempty_llc_streams() {
    // Memory-intensive benchmarks must stress the LLC; insensitive ones
    // may be quiet but still record cleanly.
    for b in suite() {
        let w = record(b.name, b.trace(), 60_000);
        assert_eq!(w.instructions(), 60_000, "{}", b.name);
        if b.in_subset {
            assert!(
                w.llc_apki() > 1.0,
                "{} is in the memory-intensive subset but has APKI {}",
                b.name,
                w.llc_apki()
            );
        }
    }
}

#[test]
fn sampler_beats_lru_on_its_showcase_benchmark() {
    let bench = benchmark("456.hmmer").unwrap();
    let w = record(bench.name, bench.trace(), 1_000_000);
    let llc = CacheConfig::llc_2mb();
    let mut lru = Cache::new(llc);
    let lru_misses = replay(&w.llc, &mut lru).stats.misses;
    let mut sdbp = Cache::with_policy(llc, PolicyKind::Sampler.build(llc, 1));
    let sdbp_misses = replay(&w.llc, &mut sdbp).stats.misses;
    assert!(
        (sdbp_misses as f64) < 0.97 * lru_misses as f64,
        "sampler ({sdbp_misses}) should clearly beat LRU ({lru_misses}) on hmmer"
    );
}

#[test]
fn bypassing_policies_fill_less_than_lru() {
    let bench = benchmark("462.libquantum").unwrap();
    let w = record(bench.name, bench.trace(), 500_000);
    let llc = CacheConfig::llc_2mb();
    let mut lru = Cache::new(llc);
    let lru_fills = replay(&w.llc, &mut lru).stats.fills;
    let mut sdbp = Cache::with_policy(llc, PolicyKind::Sampler.build(llc, 1));
    let s = replay(&w.llc, &mut sdbp).stats;
    assert!(s.bypasses > 0, "streaming workload must trigger bypasses");
    assert!(s.fills < lru_fills);
}
