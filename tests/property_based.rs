//! Property-style tests over the core invariants, driven by the in-repo
//! deterministic RNG (fixed seeds, exact reproduction, offline build).

use sdbp_suite::cache::policy::Access;
use sdbp_suite::cache::recorder::LlcAccess;
use sdbp_suite::cache::{Cache, CacheConfig, HitMap};
use sdbp_suite::harness::runner::PolicyKind;
use sdbp_suite::optimal;
use sdbp_suite::trace::rng::Rng64;
use sdbp_suite::trace::{AccessKind, BlockAddr, Pc};

const CASES: u64 = 48;

/// A compact random access stream: (pc index, block, is_write).
fn random_stream(rng: &mut Rng64, max_len: usize) -> Vec<(u8, u16, bool)> {
    (0..rng.gen_range(1usize..max_len))
        .map(|_| (rng.next_u64() as u8, rng.gen_range(0u64..2048) as u16, rng.gen_bool(0.5)))
        .collect()
}

fn to_accesses(raw: &[(u8, u16, bool)]) -> Vec<Access> {
    raw.iter()
        .map(|&(pc, block, w)| {
            Access::demand(
                Pc::new(0x400 + u64::from(pc) * 4),
                BlockAddr::new(u64::from(block)),
                if w { AccessKind::Write } else { AccessKind::Read },
                0,
            )
        })
        .collect()
}

fn to_llc_stream(raw: &[(u8, u16, bool)]) -> Vec<LlcAccess> {
    raw.iter()
        .enumerate()
        .map(|(i, &(pc, block, w))| LlcAccess {
            pc: Pc::new(0x400 + u64::from(pc) * 4),
            block: BlockAddr::new(u64::from(block)),
            kind: if w { AccessKind::Write } else { AccessKind::Read },
            core: 0,
            instr: i as u32,
        })
        .collect()
}

fn policy_set() -> Vec<PolicyKind> {
    let mut kinds = vec![PolicyKind::Lru];
    kinds.extend(PolicyKind::lru_comparison());
    kinds.extend(PolicyKind::random_comparison());
    kinds
}

/// Counter bookkeeping holds for every policy on any stream.
#[test]
fn stats_are_consistent_for_all_policies() {
    let mut rng = Rng64::seed_from_u64(0x5017_0001);
    for _ in 0..CASES {
        let raw = random_stream(&mut rng, 600);
        let cfg = CacheConfig::new(16, 4);
        let accesses = to_accesses(&raw);
        for policy in policy_set() {
            let mut cache = Cache::with_policy(cfg, policy.build(cfg, 1));
            for a in &accesses {
                cache.access(a);
            }
            let s = cache.stats();
            assert_eq!(s.accesses, accesses.len() as u64);
            assert_eq!(s.hits + s.misses, s.accesses);
            assert_eq!(s.fills + s.bypasses, s.misses);
            assert!(s.evictions <= s.fills);
            assert!(s.writebacks <= s.evictions);
        }
    }
}

/// A cache never reports a hit for a block it has not filled since the
/// block's last eviction (checked via a reference model).
#[test]
fn hits_match_reference_residency_model() {
    let mut rng = Rng64::seed_from_u64(0x5017_0002);
    for _ in 0..CASES {
        let raw = random_stream(&mut rng, 600);
        let cfg = CacheConfig::new(8, 4);
        let accesses = to_accesses(&raw);
        for policy in policy_set() {
            let mut cache = Cache::with_policy(cfg, policy.build(cfg, 1));
            let mut resident: std::collections::HashSet<u64> = Default::default();
            for a in &accesses {
                let outcome = cache.access(a);
                match outcome {
                    sdbp_suite::cache::AccessOutcome::Hit => {
                        assert!(
                            resident.contains(&a.block.raw()),
                            "{}: phantom hit",
                            policy.label()
                        );
                    }
                    sdbp_suite::cache::AccessOutcome::Filled { evicted } => {
                        if let Some(v) = evicted {
                            resident.remove(&v.raw());
                        }
                        resident.insert(a.block.raw());
                    }
                    sdbp_suite::cache::AccessOutcome::Bypassed => {
                        assert!(
                            !resident.contains(&a.block.raw()),
                            "{}: bypassed a resident block",
                            policy.label()
                        );
                    }
                }
            }
        }
    }
}

/// Belady MIN with bypass never misses more than LRU, and its next-use
/// links are sound.
#[test]
fn min_is_optimal_and_next_use_links_sound() {
    let mut rng = Rng64::seed_from_u64(0x5017_0003);
    for _ in 0..CASES {
        let raw = random_stream(&mut rng, 800);
        let cfg = CacheConfig::new(8, 2);
        let stream = to_llc_stream(&raw);
        let next = optimal::next_use_distances(&stream);
        for (i, &n) in next.iter().enumerate() {
            if n != optimal::NEVER {
                let n = n as usize;
                assert!(n > i);
                assert_eq!(stream[n].block, stream[i].block);
                // No intermediate access to the same block.
                for a in &stream[i + 1..n] {
                    assert_ne!(a.block, stream[i].block);
                }
            }
        }
        let min = optimal::simulate(&stream, cfg);
        let mut lru = Cache::new(cfg);
        let lru_result = sdbp_suite::cache::replay(&stream, &mut lru);
        assert!(min.misses <= lru_result.stats.misses);
        assert_eq!(min.hits + min.misses, stream.len() as u64);
    }
}

/// The LRU stack property: with the same set count, a higher-
/// associativity LRU cache hits on a superset of accesses.
#[test]
fn lru_inclusion_across_associativities() {
    let mut rng = Rng64::seed_from_u64(0x5017_0004);
    for _ in 0..CASES {
        let raw = random_stream(&mut rng, 800);
        let stream = to_llc_stream(&raw);
        let mut small = Cache::new(CacheConfig::new(8, 2));
        let mut large = Cache::new(CacheConfig::new(8, 8));
        let rs = sdbp_suite::cache::replay(&stream, &mut small);
        let rl = sdbp_suite::cache::replay(&stream, &mut large);
        for (s, l) in rs.hits.iter().zip(rl.hits.iter()) {
            assert!(!s | l, "small-cache hit missing from large cache");
        }
    }
}

/// The timing model is monotone: turning misses into hits never increases
/// cycles.
#[test]
fn timing_is_monotone_in_hits() {
    use sdbp_suite::cache::recorder::{InstrKind, InstrRecord};
    use sdbp_suite::cpu::CoreModel;
    let mut rng = Rng64::seed_from_u64(0x5017_0005);
    for _ in 0..CASES {
        let kinds: Vec<u8> =
            (0..rng.gen_range(1usize..400)).map(|_| rng.gen_range(0u64..4) as u8).collect();
        let flip = rng.next_u64() as u16;
        let records: Vec<InstrRecord> = kinds
            .iter()
            .map(|&k| {
                let kind = match k {
                    0 => InstrKind::NonMem,
                    1 => InstrKind::L1Hit,
                    2 => InstrKind::L2Hit,
                    _ => InstrKind::Llc,
                };
                InstrRecord::new(kind, false)
            })
            .collect();
        let llc_count = records.iter().filter(|r| r.kind() == InstrKind::Llc).count();
        let mut hit_bools = vec![false; llc_count];
        let all_miss: HitMap = hit_bools.iter().copied().collect();
        if llc_count > 0 {
            let idx = flip as usize % llc_count;
            hit_bools[idx] = true;
        }
        let one_hit: HitMap = hit_bools.into_iter().collect();
        let model = CoreModel::default();
        let miss_cycles = model.simulate(&records, &all_miss).cycles;
        let hit_cycles = model.simulate(&records, &one_hit).cycles;
        assert!(hit_cycles <= miss_cycles);
    }
}

/// Replay determinism for every policy (seeded RNGs, no hidden state).
#[test]
fn replay_is_deterministic_for_all_policies() {
    let mut rng = Rng64::seed_from_u64(0x5017_0006);
    for _ in 0..CASES {
        let raw = random_stream(&mut rng, 400);
        let cfg = CacheConfig::new(16, 4);
        let stream = to_llc_stream(&raw);
        for policy in policy_set() {
            let mut a = Cache::with_policy(cfg, policy.build(cfg, 1));
            let mut b = Cache::with_policy(cfg, policy.build(cfg, 1));
            let ra = sdbp_suite::cache::replay(&stream, &mut a);
            let rb = sdbp_suite::cache::replay(&stream, &mut b);
            assert_eq!(&ra, &rb, "{} not deterministic", policy.label());
        }
    }
}
