//! Property-based tests over the core invariants, driven by proptest.

use proptest::prelude::*;
use sdbp_suite::cache::policy::Access;
use sdbp_suite::cache::recorder::LlcAccess;
use sdbp_suite::cache::{Cache, CacheConfig};
use sdbp_suite::harness::runner::PolicyKind;
use sdbp_suite::optimal;
use sdbp_suite::trace::{AccessKind, BlockAddr, Pc};

/// A compact random access stream: (pc index, block, is_write).
fn stream_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u8, u16, bool)>> {
    prop::collection::vec((any::<u8>(), 0u16..2048, any::<bool>()), 1..max_len)
}

fn to_accesses(raw: &[(u8, u16, bool)]) -> Vec<Access> {
    raw.iter()
        .map(|&(pc, block, w)| {
            Access::demand(
                Pc::new(0x400 + u64::from(pc) * 4),
                BlockAddr::new(u64::from(block)),
                if w { AccessKind::Write } else { AccessKind::Read },
                0,
            )
        })
        .collect()
}

fn to_llc_stream(raw: &[(u8, u16, bool)]) -> Vec<LlcAccess> {
    raw.iter()
        .enumerate()
        .map(|(i, &(pc, block, w))| LlcAccess {
            pc: Pc::new(0x400 + u64::from(pc) * 4),
            block: BlockAddr::new(u64::from(block)),
            kind: if w { AccessKind::Write } else { AccessKind::Read },
            core: 0,
            instr: i as u32,
        })
        .collect()
}

fn policy_set() -> Vec<PolicyKind> {
    let mut kinds = vec![PolicyKind::Lru];
    kinds.extend(PolicyKind::lru_comparison());
    kinds.extend(PolicyKind::random_comparison());
    kinds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counter bookkeeping holds for every policy on any stream.
    #[test]
    fn stats_are_consistent_for_all_policies(raw in stream_strategy(600)) {
        let cfg = CacheConfig::new(16, 4);
        let accesses = to_accesses(&raw);
        for policy in policy_set() {
            let mut cache = Cache::with_policy(cfg, policy.build(cfg, 1));
            for a in &accesses {
                cache.access(a);
            }
            let s = cache.stats();
            prop_assert_eq!(s.accesses, accesses.len() as u64);
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            prop_assert_eq!(s.fills + s.bypasses, s.misses);
            prop_assert!(s.evictions <= s.fills);
            prop_assert!(s.writebacks <= s.evictions);
        }
    }

    /// A cache never reports a hit for a block it has not filled since the
    /// block's last eviction (checked via a reference model).
    #[test]
    fn hits_match_reference_residency_model(raw in stream_strategy(600)) {
        let cfg = CacheConfig::new(8, 4);
        let accesses = to_accesses(&raw);
        for policy in policy_set() {
            let mut cache = Cache::with_policy(cfg, policy.build(cfg, 1));
            let mut resident: std::collections::HashSet<u64> = Default::default();
            for a in &accesses {
                let outcome = cache.access(a);
                match outcome {
                    sdbp_suite::cache::AccessOutcome::Hit => {
                        prop_assert!(resident.contains(&a.block.raw()),
                            "{}: phantom hit", policy.label());
                    }
                    sdbp_suite::cache::AccessOutcome::Filled { evicted } => {
                        if let Some(v) = evicted {
                            resident.remove(&v.raw());
                        }
                        resident.insert(a.block.raw());
                    }
                    sdbp_suite::cache::AccessOutcome::Bypassed => {
                        prop_assert!(!resident.contains(&a.block.raw()),
                            "{}: bypassed a resident block", policy.label());
                    }
                }
            }
        }
    }

    /// Belady MIN with bypass never misses more than LRU, and its next-use
    /// links are sound.
    #[test]
    fn min_is_optimal_and_next_use_links_sound(raw in stream_strategy(800)) {
        let cfg = CacheConfig::new(8, 2);
        let stream = to_llc_stream(&raw);
        let next = optimal::next_use_distances(&stream);
        for (i, &n) in next.iter().enumerate() {
            if n != optimal::NEVER {
                let n = n as usize;
                prop_assert!(n > i);
                prop_assert_eq!(stream[n].block, stream[i].block);
                // No intermediate access to the same block.
                for a in &stream[i + 1..n] {
                    prop_assert_ne!(a.block, stream[i].block);
                }
            }
        }
        let min = optimal::simulate(&stream, cfg);
        let mut lru = Cache::new(cfg);
        let lru_result = sdbp_suite::cache::replay(&stream, &mut lru);
        prop_assert!(min.misses <= lru_result.stats.misses);
        prop_assert_eq!(min.hits + min.misses, stream.len() as u64);
    }

    /// The LRU stack property: with the same set count, a higher-
    /// associativity LRU cache hits on a superset of accesses.
    #[test]
    fn lru_inclusion_across_associativities(raw in stream_strategy(800)) {
        let stream = to_llc_stream(&raw);
        let mut small = Cache::new(CacheConfig::new(8, 2));
        let mut large = Cache::new(CacheConfig::new(8, 8));
        let rs = sdbp_suite::cache::replay(&stream, &mut small);
        let rl = sdbp_suite::cache::replay(&stream, &mut large);
        for (s, l) in rs.hits.iter().zip(&rl.hits) {
            prop_assert!(!s | l, "small-cache hit missing from large cache");
        }
    }

    /// The timing model is monotone: turning misses into hits never
    /// increases cycles.
    #[test]
    fn timing_is_monotone_in_hits(
        kinds in prop::collection::vec(0u8..4, 1..400),
        flip in any::<u16>(),
    ) {
        use sdbp_suite::cache::recorder::{InstrKind, InstrRecord};
        use sdbp_suite::cpu::CoreModel;
        let records: Vec<InstrRecord> = kinds
            .iter()
            .map(|&k| {
                let kind = match k {
                    0 => InstrKind::NonMem,
                    1 => InstrKind::L1Hit,
                    2 => InstrKind::L2Hit,
                    _ => InstrKind::Llc,
                };
                InstrRecord::new(kind, false)
            })
            .collect();
        let llc_count = records.iter().filter(|r| r.kind() == InstrKind::Llc).count();
        let all_miss = vec![false; llc_count];
        let mut one_hit = all_miss.clone();
        if llc_count > 0 {
            let idx = flip as usize % llc_count;
            one_hit[idx] = true;
        }
        let model = CoreModel::default();
        let miss_cycles = model.simulate(&records, &all_miss).cycles;
        let hit_cycles = model.simulate(&records, &one_hit).cycles;
        prop_assert!(hit_cycles <= miss_cycles);
    }

    /// Replay determinism for every policy (seeded RNGs, no hidden state).
    #[test]
    fn replay_is_deterministic_for_all_policies(raw in stream_strategy(400)) {
        let cfg = CacheConfig::new(16, 4);
        let stream = to_llc_stream(&raw);
        for policy in policy_set() {
            let mut a = Cache::with_policy(cfg, policy.build(cfg, 1));
            let mut b = Cache::with_policy(cfg, policy.build(cfg, 1));
            let ra = sdbp_suite::cache::replay(&stream, &mut a);
            let rb = sdbp_suite::cache::replay(&stream, &mut b);
            prop_assert_eq!(&ra, &rb, "{} not deterministic", policy.label());
        }
    }
}
