//! Property tests for the set-sharded replay kernel (`DESIGN.md` §13):
//! on fixed-seed random streams, a sharded replay of any set-local
//! policy is bit-identical to the serial one — the merged
//! [`ReplayResult`] *and* the probe's window sequence — at every shard
//! count, under both runners. A set-dueling policy (DIP) pins the other
//! side of the contract: its registry entry is not `shardable`, so the
//! production paths clamp it to the serial kernel and its output never
//! depends on the requested shard count.

use sdbp_suite::cache::kernel::{replay_sharded, SerialRunner, ShardPlan, ThreadRunner};
use sdbp_suite::cache::recorder::{InstrKind, InstrRecord, LlcAccess, RecordedWorkload};
use sdbp_suite::cache::replay::{replay_with_probe, WindowMisses};
use sdbp_suite::cache::{Cache, CacheConfig};
use sdbp_suite::harness::runner::{policy_shardable, run_policy_sharded, PolicyKind};
use sdbp_suite::sdbp::registry::{standard, PolicySpec, Registry};
use sdbp_suite::trace::rng::Rng64;
use sdbp_suite::trace::{AccessKind, BlockAddr, Pc};

const CASES: u64 = 16;
const SHARD_COUNTS: [usize; 3] = [1, 3, 7];
const SET_LOCAL_SPECS: [&str; 3] = ["lru", "plru", "srrip"];
const WINDOW: usize = 64;

/// A random LLC demand stream in the `property_based` idiom: blocks in
/// `0..2048` so sets see real reuse, one instruction per access.
fn random_llc_stream(rng: &mut Rng64, max_len: usize) -> Vec<LlcAccess> {
    (0..rng.gen_range(64usize..max_len))
        .map(|i| {
            let pc = rng.next_u64() as u8;
            let block = rng.gen_range(0u64..2048);
            let write = rng.gen_bool(0.5);
            LlcAccess {
                pc: Pc::new(0x400 + u64::from(pc) * 4),
                block: BlockAddr::new(block),
                kind: if write { AccessKind::Write } else { AccessKind::Read },
                core: 0,
                instr: i as u32,
            }
        })
        .collect()
}

fn build_cache(registry: &Registry, spec: &PolicySpec, llc: CacheConfig) -> Cache {
    let policy = registry.build(spec, llc, 1).expect("spec builds");
    Cache::with_policy(llc, policy)
}

/// Serial reference: full replay plus the per-window miss sequence.
fn serial_reference(
    registry: &Registry,
    spec: &PolicySpec,
    llc: CacheConfig,
    stream: &[LlcAccess],
) -> (sdbp_suite::cache::replay::ReplayResult, Vec<u64>) {
    let mut cache = build_cache(registry, spec, llc);
    let mut probe = WindowMisses::new(WINDOW);
    let result = replay_with_probe(stream, &mut cache, &mut probe);
    (result, probe.counts().to_vec())
}

/// Every set-local policy replays bit-identically — result and probe
/// window sequence — at shard counts {1, 3, 7} under the serial runner.
#[test]
fn sharded_replay_is_bit_identical_for_set_local_policies() {
    let registry = standard();
    let llc = CacheConfig::new(64, 4);
    for name in SET_LOCAL_SPECS {
        let spec: PolicySpec = name.parse().expect("spec parses");
        assert!(
            registry.entries().iter().any(|e| e.name == spec.name && e.shardable),
            "{name} lost its shardable capability flag"
        );
        let mut rng = Rng64::seed_from_u64(0x5da7_d001);
        for case in 0..CASES {
            let stream = random_llc_stream(&mut rng, 2500);
            let (serial, serial_windows) = serial_reference(&registry, &spec, llc, &stream);
            for shards in SHARD_COUNTS {
                let plan = ShardPlan::new(llc.sets, shards);
                let fresh = || build_cache(&registry, &spec, llc);
                let mut probe = WindowMisses::new(WINDOW);
                let result = replay_sharded(&stream, &plan, &fresh, &SerialRunner, Some(&mut probe))
                    .expect("geometry is valid");
                assert_eq!(
                    result, serial,
                    "{name} case {case}: {shards}-shard replay diverged from serial"
                );
                assert_eq!(
                    probe.counts(),
                    serial_windows.as_slice(),
                    "{name} case {case}: {shards}-shard probe window sequence diverged"
                );
            }
        }
    }
}

/// The thread runner merges in shard index order, never completion
/// order: its output is bit-identical to the serial runner's.
#[test]
fn thread_runner_matches_serial_runner() {
    let registry = standard();
    let llc = CacheConfig::new(64, 4);
    let spec: PolicySpec = "lru".parse().expect("spec parses");
    let mut rng = Rng64::seed_from_u64(0x5da7_d002);
    for case in 0..CASES {
        let stream = random_llc_stream(&mut rng, 2500);
        let (serial, serial_windows) = serial_reference(&registry, &spec, llc, &stream);
        for shards in [3usize, 7] {
            let plan = ShardPlan::new(llc.sets, shards);
            let fresh = || build_cache(&registry, &spec, llc);
            let mut probe = WindowMisses::new(WINDOW);
            let result = replay_sharded(&stream, &plan, &fresh, &ThreadRunner, Some(&mut probe))
                .expect("geometry is valid");
            assert_eq!(result, serial, "case {case}: threaded {shards}-shard replay diverged");
            assert_eq!(
                probe.counts(),
                serial_windows.as_slice(),
                "case {case}: threaded {shards}-shard probe diverged"
            );
        }
    }
}

/// DIP duels two leader-set cohorts through one global PSEL counter, so
/// its decisions are *not* set-local: the registry must not mark it
/// shardable, and the production path (`run_policy_sharded`) must clamp
/// it to the serial kernel so its output is independent of the
/// requested shard count.
#[test]
fn set_dueling_policy_is_clamped_to_the_serial_path() {
    assert!(
        !policy_shardable(&PolicyKind::Dip),
        "dip must stay non-shardable: its PSEL counter spans all sets"
    );

    let llc = CacheConfig::new(64, 4);
    let mut rng = Rng64::seed_from_u64(0x5da7_d003);
    let stream = random_llc_stream(&mut rng, 4000);
    let workload = RecordedWorkload {
        name: "shard-prop".to_owned(),
        records: stream
            .iter()
            .map(|_| InstrRecord::new(InstrKind::Llc, false))
            .collect(),
        llc: stream,
    };
    let serial = run_policy_sharded(&workload, &PolicyKind::Dip, llc, 1);
    for shards in [3usize, 7] {
        let sharded = run_policy_sharded(&workload, &PolicyKind::Dip, llc, shards);
        assert_eq!(
            sharded.stats, serial.stats,
            "dip at {shards} requested shards must take the serial fallback"
        );
        assert_eq!(sharded.ipc.to_bits(), serial.ipc.to_bits());
    }
}
