//! Facade crate for the SDBP reproduction workspace.
//!
//! Re-exports every subsystem under one roof so examples and integration
//! tests can `use sdbp_suite::...`. The individual crates remain the real
//! public API; see the workspace [README](https://example.invalid/sdbp) and
//! `DESIGN.md` for the system inventory.

pub use sdbp;
pub use sdbp_cache as cache;
pub use sdbp_cpu as cpu;
pub use sdbp_harness as harness;
pub use sdbp_optimal as optimal;
pub use sdbp_power as power;
pub use sdbp_predictors as predictors;
pub use sdbp_replacement as replacement;
pub use sdbp_sample as sample;
pub use sdbp_serve as serve;
pub use sdbp_trace as trace;
pub use sdbp_traceio as traceio;
pub use sdbp_workloads as workloads;
